package qopt

import (
	"math"
	"testing"

	"goodenough/internal/job"
	"goodenough/internal/quality"
	"goodenough/internal/rng"
)

func paperF() quality.Function { return quality.NewExponential(0.003, 1000) }

func mkJob(id int, deadline, demand float64) *job.Job {
	return job.New(id, 0, deadline, demand)
}

// feasible verifies the EDF prefix-capacity constraints for the current
// targets.
func feasible(now float64, jobs []*job.Job, rate float64) bool {
	sorted := append([]*job.Job(nil), jobs...)
	job.SortEDF(sorted)
	cum := 0.0
	for _, j := range sorted {
		cum += j.Target - j.Processed
		w := j.Deadline - now
		if w < 0 {
			w = 0
		}
		if cum > rate*w+1e-6 {
			return false
		}
	}
	return true
}

func TestAmpleCapacityKeepsFullDemands(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0.15, 200), mkJob(2, 0.15, 300)}
	total := Allocate(0, jobs, 100000, paperF())
	if math.Abs(total-500) > 1e-6 {
		t.Fatalf("allocated %v, want 500", total)
	}
	for _, j := range jobs {
		if j.Target != j.Demand {
			t.Fatalf("ample capacity should keep full demand: %v", j)
		}
	}
}

func TestZeroRatePinsTargets(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0.15, 200)}
	jobs[0].Advance(50)
	total := Allocate(0, jobs, 0, paperF())
	if total != 0 {
		t.Fatalf("allocated %v at zero rate", total)
	}
	if jobs[0].Target != 50 {
		t.Fatalf("target = %v, want pinned at processed 50", jobs[0].Target)
	}
}

func TestEmpty(t *testing.T) {
	if Allocate(0, nil, 1000, paperF()) != 0 {
		t.Fatal("empty allocation should be 0")
	}
}

func TestSingleJobCappedByCapacity(t *testing.T) {
	// 1000-unit job, 150 ms window, 2000 u/s → only 300 units fit.
	jobs := []*job.Job{mkJob(1, 0.15, 1000)}
	total := Allocate(0, jobs, 2000, paperF())
	if math.Abs(total-300) > 1e-6 {
		t.Fatalf("allocated %v, want 300", total)
	}
	if math.Abs(jobs[0].Target-300) > 1e-6 {
		t.Fatalf("target = %v, want 300", jobs[0].Target)
	}
}

func TestLevelFillEqualDeadlines(t *testing.T) {
	// Same deadline, equal concave f: capacity splits to equalize volumes.
	// Budget 400 over jobs of demand 500 and 300 → level 200 each? No:
	// level L with min(L,500)+min(L,300) = 400 → L = 200.
	jobs := []*job.Job{mkJob(1, 0.2, 500), mkJob(2, 0.2, 300)}
	Allocate(0, jobs, 2000, paperF()) // budget = 2000·0.2 = 400 units
	if math.Abs(jobs[0].Target-200) > 1e-5 || math.Abs(jobs[1].Target-200) > 1e-5 {
		t.Fatalf("targets = %v, %v, want 200 each", jobs[0].Target, jobs[1].Target)
	}
}

func TestLevelCapsAtShortJob(t *testing.T) {
	// Budget 700: level fill min(L,500)+min(L,300)=700 → L=400 with the
	// short job capped at 300.
	jobs := []*job.Job{mkJob(1, 0.35, 500), mkJob(2, 0.35, 300)}
	Allocate(0, jobs, 2000, paperF())
	if math.Abs(jobs[0].Target-400) > 1e-5 {
		t.Fatalf("long job target = %v, want 400", jobs[0].Target)
	}
	if math.Abs(jobs[1].Target-300) > 1e-5 {
		t.Fatalf("short job target = %v, want 300 (capped)", jobs[1].Target)
	}
}

func TestBindingPrefixSplitsLevels(t *testing.T) {
	// Job 1: 500 units due at 0.1 s; job 2: 500 units due at 0.5 s.
	// Rate 1000 u/s: prefix budget for job 1 is 100 units — binding.
	// Optimum: c1 = 100; job 2 gets min(500, 500−100+100... budget at k=2
	// is 500, minus 100 used → 400.
	jobs := []*job.Job{mkJob(1, 0.1, 500), mkJob(2, 0.5, 500)}
	Allocate(0, jobs, 1000, paperF())
	if math.Abs(jobs[0].Target-100) > 1e-5 {
		t.Fatalf("bound job target = %v, want 100", jobs[0].Target)
	}
	if math.Abs(jobs[1].Target-400) > 1e-5 {
		t.Fatalf("later job target = %v, want 400", jobs[1].Target)
	}
	if !feasible(0, jobs, 1000) {
		t.Fatal("allocation infeasible")
	}
}

func TestLevelsNonDecreasingAlongEDF(t *testing.T) {
	r := rng.New(1)
	f := paperF()
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(6)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		rate := 500 + r.Float64()*3000
		Allocate(0, jobs, rate, f)
		job.SortEDF(jobs)
		if !feasible(0, jobs, rate) {
			t.Fatalf("trial %d: infeasible allocation", trial)
		}
		// Effective level of a job = Target unless capped by Demand.
		// Levels (for uncapped jobs) must be non-decreasing.
		prev := -1.0
		for _, j := range jobs {
			if j.Target < j.Demand-1e-6 { // uncapped
				if j.Target < prev-1e-5 {
					t.Fatalf("trial %d: level decreased along EDF: %v after %v",
						trial, j.Target, prev)
				}
				prev = j.Target
			}
		}
	}
}

func TestMatchesBruteForceOnSmallInstances(t *testing.T) {
	f := paperF()
	r := rng.New(2)
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(2) // 2 or 3 jobs
		deadlines := make([]float64, n)
		demands := make([]float64, n)
		for i := range deadlines {
			deadlines[i] = 0.05 + r.Float64()*0.3
			demands[i] = 100 + r.Float64()*500
		}
		rate := 500 + r.Float64()*2500

		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, deadlines[i], demands[i])
		}
		Allocate(0, jobs, rate, f)
		got := 0.0
		for _, j := range jobs {
			got += f.Value(j.Target)
		}

		// Brute force on a grid.
		fresh := make([]*job.Job, n)
		for i := range fresh {
			fresh[i] = mkJob(i, deadlines[i], demands[i])
		}
		job.SortEDF(fresh)
		const steps = 60
		best := -1.0
		var walk func(k int, cum float64, acc float64)
		walk = func(k int, cum float64, acc float64) {
			if k == n {
				if acc > best {
					best = acc
				}
				return
			}
			j := fresh[k]
			budget := rate * j.Deadline
			for s := 0; s <= steps; s++ {
				c := j.Demand * float64(s) / steps
				if cum+c > budget+1e-9 {
					break
				}
				walk(k+1, cum+c, acc+f.Value(c))
			}
		}
		walk(0, 0, 0)

		// The grid undershoots the continuum optimum slightly; Allocate
		// must never fall below the grid best by more than grid error.
		if got < best-0.02 {
			t.Fatalf("trial %d: Allocate quality %v < brute force %v", trial, got, best)
		}
	}
}

func TestExpiredJobGetsNothingNew(t *testing.T) {
	jobs := []*job.Job{mkJob(1, 0.1, 500), mkJob(2, 0.5, 500)}
	jobs[0].Advance(40)
	Allocate(0.2, jobs, 1000, paperF()) // job 1 expired at t=0.2
	if jobs[0].Target > 40+1e-9 {
		t.Fatalf("expired job target raised to %v", jobs[0].Target)
	}
	if jobs[1].Target <= 0 {
		t.Fatal("live job starved")
	}
}

func TestProcessedFloorsRespected(t *testing.T) {
	r := rng.New(3)
	f := paperF()
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(5)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
			jobs[i].Advance(r.Float64() * jobs[i].Demand * 0.8)
		}
		Allocate(0, jobs, 100+r.Float64()*2000, f)
		for _, j := range jobs {
			if j.Target < j.Processed-1e-9 || j.Target > j.Demand+1e-9 {
				t.Fatalf("trial %d: target %v outside [%v, %v]",
					trial, j.Target, j.Processed, j.Demand)
			}
		}
	}
}

func TestAllocatedWorkMatchesReturn(t *testing.T) {
	r := rng.New(4)
	f := paperF()
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(6)
		jobs := make([]*job.Job, n)
		for i := range jobs {
			jobs[i] = mkJob(i, 0.05+r.Float64()*0.4, 130+r.Float64()*870)
		}
		total := Allocate(0, jobs, 200+r.Float64()*3000, f)
		sum := 0.0
		for _, j := range jobs {
			sum += j.Target - j.Processed
		}
		if math.Abs(total-sum) > 1e-6 {
			t.Fatalf("trial %d: returned %v but targets sum to %v", trial, total, sum)
		}
	}
}

func TestMoreCapacityNeverHurtsQuality(t *testing.T) {
	r := rng.New(5)
	f := paperF()
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(5)
		mk := func() []*job.Job {
			jobs := make([]*job.Job, n)
			for i := range jobs {
				jobs[i] = mkJob(i, 0.05+float64(i)*0.07, 130+float64((trial*31+i*97)%870))
			}
			return jobs
		}
		rate := 300 + r.Float64()*2000
		a := mk()
		Allocate(0, a, rate, f)
		b := mk()
		Allocate(0, b, rate*1.5, f)
		if BestQuality(b, f) < BestQuality(a, f)-1e-9 {
			t.Fatalf("trial %d: more capacity lowered quality", trial)
		}
	}
}

func TestBestQualityEdges(t *testing.T) {
	if BestQuality(nil, paperF()) != 1 {
		t.Fatal("empty BestQuality should be 1")
	}
}

func BenchmarkAllocate(b *testing.B) {
	f := paperF()
	r := rng.New(1)
	deadlines := make([]float64, 32)
	demands := make([]float64, 32)
	for i := range deadlines {
		deadlines[i] = 0.05 + r.Float64()*0.4
		demands[i] = 130 + r.Float64()*870
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jobs := make([]*job.Job, 32)
		for k := range jobs {
			jobs[k] = mkJob(k, deadlines[k], demands[k])
		}
		Allocate(0, jobs, 2000, f)
	}
}

func TestEqualMarginalAtOptimum(t *testing.T) {
	// KKT check: at the optimum, all jobs that are neither at their demand
	// cap nor pinned by a binding prefix constraint share (approximately)
	// the same marginal quality f'(c).
	f := quality.NewExponential(0.003, 1000)
	jobs := []*job.Job{
		mkJob(1, 0.30, 800),
		mkJob(2, 0.30, 900),
		mkJob(3, 0.30, 1000),
	}
	// One shared deadline → a single budget constraint; no caps bind at
	// this rate.
	Allocate(0, jobs, 3000, f) // budget = 900 units over 2700 demanded
	m1 := f.Marginal(jobs[0].Target)
	for _, j := range jobs[1:] {
		if math.Abs(f.Marginal(j.Target)-m1) > 1e-6 {
			t.Fatalf("marginals differ at optimum: %v vs %v",
				f.Marginal(j.Target), m1)
		}
	}
}
