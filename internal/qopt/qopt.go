// Package qopt implements the Quality-OPT algorithm (He, Elnikety, Sun —
// "Tians scheduling", ICDCS'11) as used by the paper: when the power
// assigned to a core cannot finish the core's (possibly already cut)
// workload, choose how much of each job to process so the achieved quality
// is the maximum possible within the core's processing capacity.
//
// Formally, for jobs J_1..J_n in EDF order on one core at time `now`, with
// processing-rate cap R (units/second), choose targets c_j ∈
// [processed_j, p_j] maximizing Σ f(c_j) subject to the EDF feasibility
// (prefix-capacity) constraints
//
//	Σ_{i ≤ k} (c_i − processed_i)  ≤  R · (d_k − now)   for every k.
//
// Because every job shares the same concave quality function, the optimum
// is a *level water-fill*: bring all jobs up to a common volume level,
// except where individual demands cap out or a prefix constraint binds.
// Binding prefixes split the problem — exactly dual to the YDS critical
// group: the first segment of the optimum is the prefix that can afford
// only the LOWEST fill level; it is allocated at that level, and the rest
// recurses with the leftover budgets. Levels are therefore non-decreasing
// along the EDF order.
package qopt

import (
	"math"

	"goodenough/internal/job"
	"goodenough/internal/quality"
)

// Allocate maximizes batch quality under the rate cap, setting each job's
// Target in place (never below Processed, never above Demand). It returns
// the total remaining work scheduled (Σ Target−Processed).
//
// rate is the core's processing capacity in units/second (speed·1000);
// rate <= 0 pins every target at the processed volume (nothing more can
// run). Jobs past their deadline receive no additional work.
func Allocate(now float64, jobs []*job.Job, rate float64, f quality.Function) float64 {
	if len(jobs) == 0 {
		return 0
	}
	sorted := append([]*job.Job(nil), jobs...)
	job.SortEDF(sorted)
	total, _ := AllocateEDF(now, sorted, rate, f, nil)
	return total
}

// AllocateEDF is Allocate for jobs already in EDF order (job.SortEDF),
// using scratch as the prefix-budget buffer. It returns the total work
// scheduled and the (possibly grown) scratch slice for the caller to hold
// on to — passing it back next call makes steady-state allocation zero.
// The job order is read, never mutated; budgets are consumed in place.
func AllocateEDF(now float64, sorted []*job.Job, rate float64, f quality.Function, scratch []float64) (float64, []float64) {
	if len(sorted) == 0 {
		return 0, scratch
	}
	if rate <= 0 {
		for _, j := range sorted {
			j.SetTarget(j.Processed)
		}
		return 0, scratch
	}

	// Prefix budgets in units of *additional* work.
	if cap(scratch) < len(sorted) {
		scratch = make([]float64, len(sorted))
	}
	budgets := scratch[:len(sorted)]
	for k, j := range sorted {
		w := j.Deadline - now
		if w < 0 {
			w = 0
		}
		budgets[k] = rate * w
	}
	// Budgets are non-decreasing by EDF order; enforce against float noise.
	for k := 1; k < len(budgets); k++ {
		if budgets[k] < budgets[k-1] {
			budgets[k] = budgets[k-1]
		}
	}

	total := 0.0
	allocateSegment(sorted, budgets, f, &total)
	return total, scratch
}

// allocateSegment solves the nested-constraint water-fill recursively:
// find the prefix achieving the minimum fill level, fix it, recurse on the
// suffix with the spent budget removed.
func allocateSegment(jobs []*job.Job, budgets []float64, f quality.Function, total *float64) {
	for len(jobs) > 0 {
		bestK := -1
		bestLevel := math.Inf(1)
		for k := range jobs {
			level := fillLevel(jobs[:k+1], budgets[k])
			// Prefer the longest prefix among equal levels so segments are
			// maximal (mirrors YDS taking the whole critical group).
			if level < bestLevel-1e-12 || (level <= bestLevel+1e-12 && k > bestK && level != math.Inf(1)) {
				bestLevel = level
				bestK = k
			}
		}
		if bestK < 0 || math.IsInf(bestLevel, 1) {
			// Every prefix can afford full demands: no constraint binds.
			for _, j := range jobs {
				*total += j.Demand - math.Min(j.Demand, j.Processed)
				j.SetTarget(j.Demand)
			}
			return
		}
		// Fix the first segment at its level.
		used := 0.0
		for _, j := range jobs[:bestK+1] {
			c := clampLevel(j, bestLevel)
			used += c - math.Min(c, j.Processed)
			j.SetTarget(c)
		}
		*total += used
		// Recurse on the suffix with the used budget deducted.
		jobs = jobs[bestK+1:]
		budgets = budgets[bestK+1:]
		for i := range budgets {
			budgets[i] -= used
			if budgets[i] < 0 {
				budgets[i] = 0
			}
		}
	}
}

// clampLevel returns the target for job j at fill level L.
func clampLevel(j *job.Job, level float64) float64 {
	c := level
	if c < j.Processed {
		c = j.Processed
	}
	if c > j.Demand {
		c = j.Demand
	}
	return c
}

// fillLevel finds the common level L such that raising every job to
// clampLevel(L) consumes exactly `budget` additional work. If the full
// demands fit within the budget it returns +Inf (no level binds).
func fillLevel(jobs []*job.Job, budget float64) float64 {
	need := 0.0
	maxDemand := 0.0
	for _, j := range jobs {
		if j.Demand > j.Processed {
			need += j.Demand - j.Processed
		}
		if j.Demand > maxDemand {
			maxDemand = j.Demand
		}
	}
	if need <= budget+1e-12 {
		return math.Inf(1)
	}
	lo, hi := 0.0, maxDemand
	for i := 0; i < 64 && hi-lo > 1e-12*math.Max(maxDemand, 1); i++ {
		mid := (lo + hi) / 2
		if workAtLevel(jobs, mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

// workAtLevel is the additional work required to raise every job to the
// given level (respecting floors and caps).
func workAtLevel(jobs []*job.Job, level float64) float64 {
	w := 0.0
	for _, j := range jobs {
		c := clampLevel(j, level)
		if c > j.Processed {
			w += c - j.Processed
		}
	}
	return w
}

// BestQuality returns the batch quality Σf(Target)/Σf(Demand) that the
// current targets would achieve — a convenience mirror of cut.BatchQuality
// to keep this package self-contained for its tests.
func BestQuality(jobs []*job.Job, f quality.Function) float64 {
	num, den := 0.0, 0.0
	for _, j := range jobs {
		if j.Demand <= 0 {
			continue
		}
		num += f.Value(j.Target)
		den += f.Value(j.Demand)
	}
	if den == 0 {
		return 1
	}
	return num / den
}
