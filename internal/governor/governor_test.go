package governor

import (
	"context"
	"math"
	"testing"
	"time"

	"goodenough/internal/obs"
)

// testClock is a manually advanced clock for deterministic ticks.
type testClock struct{ t time.Time }

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}
func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// recordSink captures decisions for assertions.
type recordSink struct{ ds []obs.Decision }

func (r *recordSink) ObserveDecision(d obs.Decision) { r.ds = append(r.ds, d) }

func (r *recordSink) count(k obs.DecisionKind) int {
	n := 0
	for _, d := range r.ds {
		if d.Kind == k {
			n++
		}
	}
	return n
}

// newTestGovernor builds a governor with a fake clock and a queue knob.
func newTestGovernor(t *testing.T, cfg Config, clk *testClock, queue *int) *Governor {
	t.Helper()
	cfg.Now = clk.now
	cfg.QueueLen = func() int { return *queue }
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBrownoutLadder walks the full ladder deterministically:
// ok → degraded → shedding → (hysteresis) → ok. Load is injected through
// the queue probe — queued work amortized over the rate window is offered
// load the governor must plan against.
func TestBrownoutLadder(t *testing.T) {
	clk := newTestClock()
	queue := 0
	sink := &recordSink{}
	g := newTestGovernor(t, Config{
		Budget:        2,
		Quantum:       100 * time.Millisecond,
		QGE:           0.9,
		Concavity:     6,
		NominalDemand: time.Second,
		RateWindow:    time.Second,
		RecoverTicks:  2,
		Decisions:     sink,
	}, clk, &queue)

	// Idle: ok, full headroom, admission open.
	for i := 0; i < 3; i++ {
		g.tick(clk.now())
		clk.advance(100 * time.Millisecond)
	}
	if s := g.State(); s != StateOK {
		t.Fatalf("idle state = %v, want ok", s)
	}
	if hr := g.Headroom(); hr != 1 {
		t.Fatalf("idle headroom = %v, want 1", hr)
	}
	if !g.Admit() {
		t.Fatal("idle governor refused admission")
	}

	// Mild overload: queue of 4 × 1s demand over a 1s window = 4 units/s
	// against budget 2 → u = 2, cut level 1/2 = 0.5, quality f(0.5) ≈ 0.95
	// ≥ QGE → degraded, still admitting.
	queue = 4
	g.tick(clk.now())
	if s := g.State(); s != StateDegraded {
		t.Fatalf("mild overload state = %v, want degraded", s)
	}
	if !g.Admit() {
		t.Fatal("degraded governor must keep admitting")
	}
	if hr := g.Headroom(); hr != 0 {
		t.Fatalf("overloaded headroom = %v, want 0", hr)
	}

	// Severe overload: queue of 10 → u = 5, 1/u = 0.2 below the Q_GE floor
	// (tau ≈ 0.38) → shedding, admission closed, Retry-After published.
	queue = 10
	clk.advance(100 * time.Millisecond)
	g.tick(clk.now())
	if s := g.State(); s != StateShedding {
		t.Fatalf("severe overload state = %v, want shedding", s)
	}
	if g.Admit() {
		t.Fatal("shedding governor admitted a request")
	}
	if g.Sheds() != 1 {
		t.Fatalf("Sheds() = %d, want 1", g.Sheds())
	}
	ra := g.RetryAfter()
	if ra < time.Second || ra > 30*time.Second {
		t.Fatalf("Retry-After %v outside [1s, 30s] clamp", ra)
	}

	// Recovery: load vanishes, but the ladder steps down only after
	// RecoverTicks consecutive calm quanta.
	queue = 0
	clk.advance(100 * time.Millisecond)
	g.tick(clk.now())
	if s := g.State(); s != StateShedding {
		t.Fatalf("state dropped after one calm tick: %v (hysteresis broken)", s)
	}
	clk.advance(100 * time.Millisecond)
	g.tick(clk.now())
	if s := g.State(); s != StateOK {
		t.Fatalf("recovered state = %v, want ok", s)
	}
	if !g.Admit() {
		t.Fatal("recovered governor refused admission")
	}
	// Every transition left a decision record.
	if n := sink.count(obs.DecisionModeSwitch); n != 3 {
		t.Fatalf("mode-switch decisions = %d, want 3 (→degraded, →shedding, →ok)", n)
	}
	if n := sink.count(obs.DecisionShed); n != 1 {
		t.Fatalf("shed decisions = %d, want 1", n)
	}
}

// TestCutLowestMarginalFirst: under degraded load, requests past the cut
// level are cancelled via their run contexts, most-progressed (lowest
// f'(c)) first, and Finish reports a partial quality.
func TestCutLowestMarginalFirst(t *testing.T) {
	clk := newTestClock()
	// Two admissions this quantum (EWMA rate 2/s) plus a queue of 2 over a
	// 1s window = 4 units/s against budget 2 → u = 2, cut level 0.5.
	queue := 2
	sink := &recordSink{}
	g := newTestGovernor(t, Config{
		Budget:        2,
		Quantum:       100 * time.Millisecond,
		QGE:           0.9,
		NominalDemand: time.Second,
		RateWindow:    time.Second,
		Decisions:     sink,
	}, clk, &queue)

	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	a := g.Register(1.0, cancelA, obs.SpanContext{}) // will be 60% done: past level
	clk.advance(500 * time.Millisecond)
	b := g.Register(1.0, cancelB, obs.SpanContext{}) // will be 10% done: below level
	clk.advance(100 * time.Millisecond)

	g.tick(clk.now())
	if g.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", g.State())
	}
	select {
	case <-ctxA.Done():
	default:
		t.Fatal("60-percent-progressed request was not cut")
	}
	select {
	case <-ctxB.Done():
		t.Fatal("10-percent-progressed request was cut below the level")
	default:
	}
	qa, cutA := a.Finish()
	if !cutA {
		t.Fatal("Finish(a) reports uncut after a cut")
	}
	if qa <= 0 || qa >= 1 {
		t.Fatalf("cut quality = %v, want in (0, 1)", qa)
	}
	qb, cutB := b.Finish()
	if cutB || qb != 1 {
		t.Fatalf("uncut Finish = (%v, %v), want (1, false)", qb, cutB)
	}
	if g.Cuts() != 1 {
		t.Fatalf("Cuts() = %d, want 1", g.Cuts())
	}
	if n := sink.count(obs.DecisionCut); n != 1 {
		t.Fatalf("cut decisions = %d, want 1", n)
	}
	cancelA()
	cancelB()
}

// TestBQCompensation: with observed quality below Q_GE the governor skips
// cutting for the quantum — a request past the level survives — and emits
// a compensate decision.
func TestBQCompensation(t *testing.T) {
	clk := newTestClock()
	queue := 4
	sink := &recordSink{}
	g := newTestGovernor(t, Config{
		Budget:        2,
		Quantum:       100 * time.Millisecond,
		QGE:           0.9,
		NominalDemand: time.Second,
		RateWindow:    time.Second,
		Decisions:     sink,
	}, clk, &queue)

	// Observed quality has slipped (as if a burst of deep cuts just
	// drained): the next overloaded quantum must compensate, not cut.
	g.mu.Lock()
	g.qualEWMA = 0.5
	g.mu.Unlock()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tk := g.Register(1.0, cancel, obs.SpanContext{})
	clk.advance(700 * time.Millisecond) // x = 0.7, far past any cut level

	g.tick(clk.now())
	select {
	case <-ctx.Done():
		t.Fatal("governor cut during BQ compensation")
	default:
	}
	if n := sink.count(obs.DecisionCompensate); n != 1 {
		t.Fatalf("compensate decisions = %d, want 1", n)
	}
	if _, cut := tk.Finish(); cut {
		t.Fatal("ticket marked cut during compensation")
	}
}

// TestAllowanceMetering: the dist-driven budget meter cuts a request that
// outruns its allowance even when the uniform level alone would spare it
// (huge demand → tiny normalized progress).
func TestAllowanceMetering(t *testing.T) {
	clk := newTestClock()
	queue := 0
	g := newTestGovernor(t, Config{
		Budget:        1, // two in-flight requests consume 2 units/s: over budget
		Quantum:       100 * time.Millisecond,
		QGE:           0.9,
		NominalDemand: time.Second,
		RateWindow:    time.Second,
	}, clk, &queue)

	ctxA, cancelA := context.WithCancel(context.Background())
	ctxB, cancelB := context.WithCancel(context.Background())
	defer cancelA()
	defer cancelB()
	g.Register(100, cancelA, obs.SpanContext{})
	g.Register(100, cancelB, obs.SpanContext{})

	cutSeen := false
	for i := 0; i < 10 && !cutSeen; i++ {
		clk.advance(100 * time.Millisecond)
		g.tick(clk.now())
		select {
		case <-ctxA.Done():
			cutSeen = true
		default:
		}
		select {
		case <-ctxB.Done():
			cutSeen = true
		default:
		}
	}
	if !cutSeen {
		t.Fatal("budget meter never cut despite 2 units/s consumed against a budget of 1")
	}
	if g.Cuts() == 0 {
		t.Fatal("Cuts() = 0 after metered cut")
	}
}

// TestRetryAfterFromDrainRate: the shed hint is backlog over observed
// drain rate, clamped to the configured bounds.
func TestRetryAfterFromDrainRate(t *testing.T) {
	clk := newTestClock()
	queue := 5
	g := newTestGovernor(t, Config{
		Budget:        2,
		Quantum:       100 * time.Millisecond,
		NominalDemand: time.Second,
		RateWindow:    time.Second,
	}, clk, &queue)

	// Three completions in one quantum → drain EWMA = 0.1·(3/0.1s) = 3/s.
	for i := 0; i < 3; i++ {
		tk := g.Register(1.0, func() {}, obs.SpanContext{})
		tk.Finish()
	}
	g.tick(clk.now())
	// (queued+1)/drain = 6/3 = 2s.
	got := g.RetryAfter().Seconds()
	if math.Abs(got-2) > 0.1 {
		t.Fatalf("Retry-After = %vs, want ≈2s from drain rate", got)
	}

	// No drain observed → the hint pins to the max clamp, never zero.
	g2 := newTestGovernor(t, Config{
		Budget: 2, Quantum: 100 * time.Millisecond,
		MaxRetryAfter: 7 * time.Second,
	}, clk, &queue)
	g2.tick(clk.now())
	if ra := g2.RetryAfter(); ra != 7*time.Second {
		t.Fatalf("zero-drain Retry-After = %v, want the 7s clamp", ra)
	}
}

// TestFinishIdempotent: double Finish returns the first verdict and the
// in-flight set shrinks exactly once.
func TestFinishIdempotent(t *testing.T) {
	clk := newTestClock()
	queue := 0
	g := newTestGovernor(t, Config{Budget: 8}, clk, &queue)
	tk := g.Register(1.0, func() {}, obs.SpanContext{})
	if g.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", g.InFlight())
	}
	q1, c1 := tk.Finish()
	q2, c2 := tk.Finish()
	if q1 != q2 || c1 != c2 {
		t.Fatalf("Finish not idempotent: (%v,%v) then (%v,%v)", q1, c1, q2, c2)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after double Finish, want 0", g.InFlight())
	}
}

// TestNominalLearning: uncut completions teach the demand estimator.
func TestNominalLearning(t *testing.T) {
	clk := newTestClock()
	queue := 0
	g := newTestGovernor(t, Config{Budget: 8, NominalDemand: time.Second}, clk, &queue)
	for i := 0; i < 20; i++ {
		tk := g.Register(0, func() {}, obs.SpanContext{})
		clk.advance(3 * time.Second)
		tk.Finish()
	}
	g.mu.Lock()
	nominal := g.nominal
	g.mu.Unlock()
	if nominal < 2.5 {
		t.Fatalf("nominal = %vs after twenty 3s completions, want ≥ 2.5s", nominal)
	}
}
