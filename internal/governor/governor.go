// Package governor is the live GE overload governor: the paper's
// good-enough machinery — sum-constrained budget metering, marginal-quality
// cutting, BQ compensation, and quality-floor shedding — run as a control
// loop over a real worker pool instead of a simulated core array.
//
// The model: every in-flight request consumes one work-unit per second
// while it runs (a slot of real CPU), and carries a demand — the seconds of
// work a full-quality answer needs. Config.Budget is the sustained
// work-rate the operator grants the pool. Each quantum the governor
// estimates the offered work-rate (admission rate × mean demand, plus the
// backlog drained over the rate window) and compares it to the budget:
//
//   - fits → state ok. Nobody is touched.
//   - over budget, but a uniform cut to fraction τ = capacity/offered of
//     each request's demand still yields batch quality ≥ Q_GE → state
//     degraded. Requests whose progress has reached the cut level are
//     cancelled (the PR-3 context plumbing turns that into a partial
//     Result), lowest marginal quality f'(c) first — exactly the
//     simulator's shed ordering, shared via sched.CompareShed.
//   - even cutting everyone to the Q_GE floor cannot fit → state shedding.
//     Cutting continues at the floor (never below — the good-enough
//     guarantee), and admission closes: new arrivals get 429 with a
//     Retry-After derived from the observed drain rate, the only honest
//     number the server has.
//
// Budget metering reuses internal/dist: per quantum the budget is
// distributed over in-flight consumption demands — equal sharing below the
// critical load, water-filling above (the paper's ES/WF hybrid) — and a
// request that outruns its accumulated allowance is cut even when the
// uniform level alone would spare it. BQ compensation: when the observed
// quality EWMA falls below Q_GE, the governor skips cutting for a quantum
// to rebuild quality, trading latency for fidelity like the paper's BQ
// mode. Every verdict — admit, cut, compensate, shed, state switch — emits
// an obs decision record and, where a parent exists, a span.
//
// The per-quantum tick is allocation-free in steady state (scratch slices,
// fixed-size EWMAs, atomic published state); BenchmarkGovernorTick gates
// that at 0 allocs/op.
package governor

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"goodenough/internal/dist"
	"goodenough/internal/obs"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
)

// State is the brownout ladder position, ordered by severity.
type State int32

const (
	// StateOK: offered load fits the budget; no request is degraded.
	StateOK State = iota
	// StateDegraded: demand is being cut, but quality stays >= Q_GE.
	StateDegraded
	// StateShedding: even Q_GE-floor cutting cannot fit; admission closed.
	StateShedding
)

// String returns the stable wire name (readyz bodies, X-GE-Brownout).
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDegraded:
		return "degraded"
	case StateShedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// ParseState is the inverse of String; unknown text reports ok=false.
func ParseState(s string) (State, bool) {
	switch s {
	case "ok":
		return StateOK, true
	case "degraded":
		return StateDegraded, true
	case "shedding":
		return StateShedding, true
	}
	return StateOK, false
}

// Config parameterizes the governor. Zero values take the defaults noted
// on each field.
type Config struct {
	// Budget is the sustained work-rate granted to the pool, in
	// work-units/sec (one running request consumes one unit/sec). Typical:
	// the worker-slot count. Default 1.
	Budget float64
	// Quantum is the control period. Default 100ms.
	Quantum time.Duration
	// CriticalLoad is the fraction of Budget above which budget metering
	// switches from equal sharing to water-filling (the paper's ES/WF
	// critical-load boundary). Default 0.85.
	CriticalLoad float64
	// QGE is the good-enough batch quality target. Default 0.9.
	QGE float64
	// Concavity is the exponential quality function's C over normalized
	// demand (Xmax = 1): quality of a request served fraction x of its
	// demand is (1-e^{-Cx})/(1-e^{-C}). Default 6.
	Concavity float64
	// NominalDemand seeds the estimate of full-quality seconds of work per
	// request; the governor then learns it from uncut completions.
	// Default 1s.
	NominalDemand time.Duration
	// RateWindow smooths the admission/drain rate estimators and is the
	// horizon over which queued backlog must drain. Default 5s.
	RateWindow time.Duration
	// RecoverTicks is how many consecutive calm quanta must pass before
	// the ladder steps back down (hysteresis). Default 3.
	RecoverTicks int
	// MinRetryAfter / MaxRetryAfter clamp the drain-rate-derived shed
	// hint. Defaults 1s / 30s.
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
	// QueueLen probes the admission-queue depth (optional; nil reads 0).
	QueueLen func() int
	// Decisions receives one record per admit/cut/compensate/shed/switch
	// verdict (optional).
	Decisions obs.DecisionSink
	// Spans, when set, emits governor spans parented to request spans.
	Spans *obs.SpanBus
	// Now is the clock, injectable for deterministic tests. Default
	// time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 100 * time.Millisecond
	}
	if c.CriticalLoad <= 0 || c.CriticalLoad > 1 {
		c.CriticalLoad = 0.85
	}
	if c.QGE <= 0 || c.QGE >= 1 {
		c.QGE = 0.9
	}
	if c.Concavity <= 0 {
		c.Concavity = 6
	}
	if c.NominalDemand <= 0 {
		c.NominalDemand = time.Second
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 5 * time.Second
	}
	if c.RecoverTicks <= 0 {
		c.RecoverTicks = 3
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = time.Second
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 30 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Ticket tracks one admitted request from Register to Finish.
type Ticket struct {
	g         *Governor
	id        int
	idx       int // position in g.inflight (swap-delete bookkeeping)
	start     time.Time
	demand    float64 // seconds of full-quality work
	allowance float64 // metered work budget granted so far, seconds
	cancel    context.CancelFunc
	span      obs.SpanContext
	cut       bool
	done      bool
}

// cutCand is tick scratch: a cut victim with its shed-ordering key.
type cutCand struct {
	t        *Ticket
	marginal float64
}

// Governor runs the control loop. Build with New, drive with Start/Stop
// (or tick directly in tests), and wrap every request in Register/Finish.
type Governor struct {
	cfg    Config
	f      *quality.Exponential // over normalized demand, Xmax = 1
	tauQGE float64              // normalized volume where f reaches QGE

	mu           sync.Mutex
	inflight     []*Ticket
	nextID       int
	admits       int     // Register calls since last tick
	finishes     int     // Finish calls since last tick
	lamEWMA      float64 // admissions/sec
	drainEWMA    float64 // completions/sec
	demandEWMA   float64 // mean demand of admitted requests, seconds
	nominal      float64 // learned full-quality seconds per request
	qualEWMA     float64 // observed per-request quality
	cutLevel     float64 // current normalized cut level (1 = no cutting)
	lastLoad     float64 // offered work-rate seen by the last tick
	calm         int     // consecutive ticks below the current state
	compensating bool    // BQ: skipping cuts to rebuild quality

	filler  dist.Filler
	demands []float64
	cands   []cutCand

	state    atomic.Int32
	headroom atomic.Uint64 // Float64bits(1 - utilization, clamped to [0,1])
	retryNS  atomic.Int64  // drain-derived Retry-After, nanoseconds
	cuts     atomic.Int64
	sheds    atomic.Int64
	ticks    atomic.Int64

	stopCh    chan struct{}
	doneCh    chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

// New builds a governor. The configuration cannot fail beyond defaulting,
// but the constructor keeps the error slot so future validation does not
// change call sites.
func New(cfg Config) (*Governor, error) {
	cfg = cfg.withDefaults()
	f := quality.NewExponential(cfg.Concavity, 1)
	g := &Governor{
		cfg:        cfg,
		f:          f,
		tauQGE:     f.Inverse(cfg.QGE),
		nominal:    cfg.NominalDemand.Seconds(),
		demandEWMA: cfg.NominalDemand.Seconds(),
		qualEWMA:   1,
		cutLevel:   1,
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	g.headroom.Store(math.Float64bits(1))
	g.retryNS.Store(int64(cfg.MinRetryAfter))
	return g, nil
}

// BindQueue installs the admission-queue probe after construction (the
// server owns the queue but is built after its governor).
func (g *Governor) BindQueue(fn func() int) {
	g.mu.Lock()
	g.cfg.QueueLen = fn
	g.mu.Unlock()
}

// Start launches the control loop at the configured quantum. Idempotent.
func (g *Governor) Start() {
	g.startOnce.Do(func() {
		go func() {
			defer close(g.doneCh)
			tick := time.NewTicker(g.cfg.Quantum)
			defer tick.Stop()
			for {
				select {
				case <-g.stopCh:
					return
				case <-tick.C:
					g.tick(g.cfg.Now())
				}
			}
		}()
	})
}

// Stop halts the control loop and waits for it to exit (so SIGTERM drain
// leaves no goroutine behind). Safe to call multiple times and without
// Start; Register/Finish stay usable after Stop for requests still
// draining — the last published state simply freezes.
func (g *Governor) Stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	g.startOnce.Do(func() { close(g.doneCh) }) // never started: nothing to wait for
	<-g.doneCh
}

// State returns the current brownout ladder position.
func (g *Governor) State() State { return State(g.state.Load()) }

// Headroom returns the fraction of budget still unclaimed by offered load,
// clamped to [0, 1]. Replica pickers prefer the largest value.
func (g *Governor) Headroom() float64 {
	return math.Float64frombits(g.headroom.Load())
}

// RetryAfter returns the current drain-rate-derived shed hint: the time
// for the present backlog plus one to drain at the observed completion
// rate, clamped to [MinRetryAfter, MaxRetryAfter].
func (g *Governor) RetryAfter() time.Duration {
	return time.Duration(g.retryNS.Load())
}

// Cuts reports how many in-flight requests have been cut since start.
func (g *Governor) Cuts() int64 { return g.cuts.Load() }

// Sheds reports how many admissions have been refused since start.
func (g *Governor) Sheds() int64 { return g.sheds.Load() }

// InFlight reports the number of registered, unfinished tickets.
func (g *Governor) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.inflight)
}

// Admit is the admission verdict: false while the ladder sits at
// shedding. Each refusal emits a shed decision carrying the load and
// capacity the verdict rests on.
func (g *Governor) Admit() bool {
	if State(g.state.Load()) != StateShedding {
		if g.cfg.Decisions != nil {
			g.mu.Lock()
			load := g.lastLoad
			g.mu.Unlock()
			obs.EmitDecision(g.cfg.Decisions, obs.Decision{
				Kind: obs.DecisionAdmit, Machine: -1, Job: -1,
				Load: load, Capacity: g.cfg.Budget, Budget: g.cfg.Budget,
				Action: "admit"})
		}
		return true
	}
	g.sheds.Add(1)
	if g.cfg.Decisions != nil {
		g.mu.Lock()
		load := g.lastLoad
		g.mu.Unlock()
		obs.EmitDecision(g.cfg.Decisions, obs.Decision{
			Kind: obs.DecisionShed, Machine: -1, Job: -1,
			Load: load, Capacity: g.cfg.Budget, Budget: g.cfg.Budget,
			Action: "brownout"})
	}
	return false
}

// Register enrolls an admitted request. demand is the full-quality work
// estimate in seconds (<= 0 uses the learned nominal); cancel is the
// request's run-context cancel, which a cut invokes to produce a partial
// Result. span, when non-zero, parents the cut span for this request.
func (g *Governor) Register(demand float64, cancel context.CancelFunc, span obs.SpanContext) *Ticket {
	g.mu.Lock()
	defer g.mu.Unlock()
	if demand <= 0 {
		demand = g.nominal
	}
	const alpha = 0.1
	g.demandEWMA += alpha * (demand - g.demandEWMA)
	t := &Ticket{
		g:      g,
		id:     g.nextID,
		idx:    len(g.inflight),
		start:  g.cfg.Now(),
		demand: demand,
		// One quantum of grace so a request admitted between ticks is
		// never cut before the metering has seen it once.
		allowance: g.cfg.Quantum.Seconds(),
		cancel:    cancel,
		span:      span,
	}
	g.nextID++
	g.admits++
	g.inflight = append(g.inflight, t)
	return t
}

// Finish settles a ticket: removes it from the in-flight set, feeds the
// quality and drain estimators, and returns the request's achieved quality
// (1 for an uncut natural completion, f(progress) for a cut one) plus
// whether it was cut. Idempotent; later calls return the first verdict.
func (t *Ticket) Finish() (q float64, cut bool) {
	g := t.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.done {
		return t.quality(g.cfg.Now()), t.cut
	}
	t.done = true
	g.finishes++
	// Swap-delete from the in-flight set.
	last := len(g.inflight) - 1
	g.inflight[t.idx] = g.inflight[last]
	g.inflight[t.idx].idx = t.idx
	g.inflight[last] = nil
	g.inflight = g.inflight[:last]

	now := g.cfg.Now()
	q = t.quality(now)
	const qAlpha = 0.2
	g.qualEWMA += qAlpha * (q - g.qualEWMA)
	if !t.cut {
		// Natural completions teach the nominal-demand estimator what a
		// full-quality request actually costs.
		elapsed := now.Sub(t.start).Seconds()
		const nAlpha = 0.3
		g.nominal += nAlpha * (elapsed - g.nominal)
		if g.nominal < 1e-3 {
			g.nominal = 1e-3
		} else if g.nominal > 600 {
			g.nominal = 600
		}
	}
	return q, t.cut
}

// quality computes the achieved quality of the ticket at time now. Uncut
// requests completed on their own terms: quality 1 by definition. Cut
// requests score f(progress/demand) — the paper's per-job quality of a
// demand served only partially.
func (t *Ticket) quality(now time.Time) float64 {
	if !t.cut {
		return 1
	}
	x := now.Sub(t.start).Seconds() / t.demand
	if x >= 1 {
		return 1
	}
	return t.g.f.Value(x)
}

// tick is the per-quantum control step. Allocation-free in steady state:
// scratch slices are governor-owned, decisions and spans are flat values,
// and published state goes through atomics.
func (g *Governor) tick(now time.Time) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.ticks.Add(1)
	cfg := &g.cfg
	h := cfg.Quantum.Seconds()
	window := cfg.RateWindow.Seconds()
	beta := h / window
	if beta > 1 {
		beta = 1
	}
	g.lamEWMA += beta * (float64(g.admits)/h - g.lamEWMA)
	g.drainEWMA += beta * (float64(g.finishes)/h - g.drainEWMA)
	g.admits, g.finishes = 0, 0

	queued := 0
	if cfg.QueueLen != nil {
		queued = cfg.QueueLen()
	}
	pbar := g.demandEWMA
	if pbar < 1e-3 {
		pbar = 1e-3
	}
	// Offered work-rate: the sustained admission stream plus the backlog
	// amortized over the rate window. The instantaneous consumption of the
	// in-flight set (one unit/sec each) is a floor — n running requests
	// spend n units/sec right now regardless of what arrives next.
	load := g.lamEWMA*pbar + float64(queued)*pbar/window
	if n := float64(len(g.inflight)); n > load {
		load = n
	}
	g.lastLoad = load
	u := load / cfg.Budget
	heavy := load >= cfg.CriticalLoad*cfg.Budget

	// Plan the cut level and raw ladder position for this quantum.
	raw, level := planLevel(u, g.tauQGE)

	// BQ compensation: observed quality has slipped below the target, so
	// skip cutting for this quantum and let in-flight work run to rebuild
	// it — the paper's BQ mode trading throughput for fidelity. Admission
	// still closes if the raw state says shedding.
	if raw != StateOK && g.qualEWMA < cfg.QGE {
		level = 1
		if !g.compensating {
			g.compensating = true
			g.emitState(now, obs.DecisionCompensate, "compensate", load, u)
		}
	} else if g.compensating {
		g.compensating = false
	}
	g.cutLevel = level

	// Ladder with hysteresis: escalate immediately, recover only after
	// RecoverTicks consecutive calmer quanta.
	cur := State(g.state.Load())
	switch {
	case raw > cur:
		cur, g.calm = raw, 0
		g.state.Store(int32(cur))
		g.emitState(now, obs.DecisionModeSwitch, cur.String(), load, u)
	case raw < cur:
		g.calm++
		if g.calm >= cfg.RecoverTicks {
			cur, g.calm = raw, 0
			g.state.Store(int32(cur))
			g.emitState(now, obs.DecisionModeSwitch, cur.String(), load, u)
		}
	default:
		g.calm = 0
	}

	// Budget metering over the in-flight set: distribute the budget across
	// per-request consumption demands — ES under light load, WF above the
	// critical boundary — and advance each ticket's allowance. A request
	// past the uniform cut level, or past its metered allowance, is cut.
	g.demands = g.demands[:0]
	for _, t := range g.inflight {
		d := 1.0
		if x := now.Sub(t.start).Seconds() / t.demand; x >= 1 {
			d = 0 // saturated: wants nothing more
		}
		g.demands = append(g.demands, d)
	}
	alloc := g.filler.Distribute(dist.PolicyHybrid, cfg.Budget, g.demands, heavy)
	g.cands = g.cands[:0]
	for i, t := range g.inflight {
		if t.cut {
			continue
		}
		elapsed := now.Sub(t.start).Seconds()
		if g.compensating {
			// Compensation suspends both cut mechanisms; the allowance
			// catches up to actual progress so the quantum of grace does
			// not turn into a burst of instant cuts when it ends.
			if t.allowance < elapsed {
				t.allowance = elapsed
			}
			t.allowance += alloc[i] * h
			continue
		}
		t.allowance += alloc[i] * h
		x := elapsed / t.demand
		if elapsed >= t.allowance || (level < 1 && x >= level) {
			g.cands = append(g.cands, cutCand{t: t, marginal: g.f.Marginal(x)})
		}
	}
	// Cut lowest marginal quality first — the simulator's shed order —
	// so the decision stream records victims cheapest-first.
	slices.SortStableFunc(g.cands, func(a, b cutCand) int {
		return sched.CompareShed(a.marginal, a.t.id, b.marginal, b.t.id)
	})
	for _, c := range g.cands {
		t := c.t
		t.cut = true
		g.cuts.Add(1)
		if t.cancel != nil {
			t.cancel()
		}
		obs.EmitDecision(cfg.Decisions, obs.Decision{
			Kind: obs.DecisionCut, Machine: -1, Job: t.id,
			Load: load, Capacity: cfg.Budget, Marginal: c.marginal,
			Budget: cfg.Budget, Score: level, Alts: len(g.cands),
			Action: "cut"})
		if cfg.Spans != nil {
			s := cfg.Spans.Start("governor.cut", obs.SpanSched, t.span)
			s.SetValue(now.Sub(t.start).Seconds() / t.demand)
			s.SetNote(cur.String())
			cfg.Spans.Finish(s)
		}
	}

	// Publish the shed hint and headroom.
	retry := cfg.MaxRetryAfter
	if g.drainEWMA > 1e-9 {
		retry = time.Duration(float64(queued+1) / g.drainEWMA * float64(time.Second))
	}
	if retry < cfg.MinRetryAfter {
		retry = cfg.MinRetryAfter
	}
	if retry > cfg.MaxRetryAfter {
		retry = cfg.MaxRetryAfter
	}
	g.retryNS.Store(int64(retry))
	hr := 1 - u
	if hr < 0 {
		hr = 0
	} else if hr > 1 {
		hr = 1
	}
	g.headroom.Store(math.Float64bits(hr))
}

// planLevel maps utilization to the raw ladder position and the normalized
// cut level for the quantum: no cutting when load fits, a proportional cut
// while it keeps batch quality at or above the Q_GE floor, and the floor
// itself (plus closed admission) beyond that. Quality is monotone in
// budget by construction — level = clamp(1/u, tauQGE, 1) — which the fuzz
// harness checks against the full tick pipeline.
func planLevel(u, tauQGE float64) (State, float64) {
	if math.IsNaN(u) || u <= 1 {
		return StateOK, 1
	}
	tb := 1 / u
	if tb >= tauQGE {
		return StateDegraded, tb
	}
	return StateShedding, tauQGE
}

// emitState records a ladder or compensation transition.
func (g *Governor) emitState(now time.Time, kind obs.DecisionKind, action string, load, u float64) {
	obs.EmitDecision(g.cfg.Decisions, obs.Decision{
		Kind: kind, Machine: -1, Job: -1,
		Load: load, Capacity: g.cfg.Budget, Budget: g.cfg.Budget,
		Score: u, Alts: len(g.inflight), Action: action})
	if g.cfg.Spans != nil {
		s := g.cfg.Spans.Start("governor."+action, obs.SpanSched, obs.SpanContext{})
		s.SetValue(u)
		s.SetNote(action)
		g.cfg.Spans.Finish(s)
	}
}
