package governor

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"goodenough/internal/obs"
)

// TestGovernorRaceHammer runs the live control loop against a storm of
// concurrent Register/Finish/Admit traffic and telemetry reads, then stops
// it mid-flight. Its value is under -race (the CI test job): every shared
// path — tick vs. Finish swap-delete, cut vs. cancel, atomic publication —
// gets exercised simultaneously.
func TestGovernorRaceHammer(t *testing.T) {
	g, err := New(Config{
		Budget:   2,
		Quantum:  time.Millisecond, // spin the loop hard
		QGE:      0.9,
		QueueLen: func() int { return 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Admit()
				ctx, cancel := context.WithCancel(context.Background())
				tk := g.Register(0.01, cancel, obs.SpanContext{})
				if seed%2 == 0 {
					runtime.Gosched()
				}
				select {
				case <-ctx.Done(): // cut landed; fine
				default:
				}
				tk.Finish()
				tk.Finish() // double-finish must stay safe under contention
				cancel()
				_ = g.State()
				_ = g.Headroom()
				_ = g.RetryAfter()
			}
		}(w)
	}
	wg.Wait()
	g.Stop()
	// Post-stop drain: Register/Finish must still work (requests finishing
	// during SIGTERM drain outlive the control loop).
	tk := g.Register(1, func() {}, obs.SpanContext{})
	if q, cut := tk.Finish(); cut || q != 1 {
		t.Fatalf("post-stop Finish = (%v, %v), want (1, false)", q, cut)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after hammer, want 0", g.InFlight())
	}
}

// TestGovernorStopNoLeak proves Start/Stop cycles strand no goroutine —
// the SIGTERM drain path calls Stop and must get the control loop's exit,
// not a promise. Also covers Stop-without-Start and double-Stop.
func TestGovernorStopNoLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		g, err := New(Config{Budget: 1, Quantum: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		time.Sleep(3 * time.Millisecond) // let it tick at least once
		g.Stop()
		g.Stop() // idempotent
	}
	// Never started: Stop must not hang.
	g, err := New(Config{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { g.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
