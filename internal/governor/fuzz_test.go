package governor

import (
	"math"
	"testing"
)

// FuzzPlanMonotone checks the governor's planning invariants over
// arbitrary float inputs: planLevel never panics, the cut level stays
// inside [min(tauQGE, 1), 1], the ladder position matches the level, and —
// the property the whole design leans on — achieved batch quality is
// monotone in budget: for the same offered load, a larger budget never
// plans a lower quality.
func FuzzPlanMonotone(f *testing.F) {
	f.Add(4.0, 1.0, 2.0, 0.38)
	f.Add(10.0, 2.0, 2.0, 0.38)
	f.Add(0.5, 1.0, 4.0, 0.9)
	f.Add(math.Inf(1), 1.0, 2.0, 0.38)
	f.Fuzz(func(t *testing.T, load, b1, b2, tau float64) {
		// Normalize to the domain the governor feeds planLevel from:
		// non-negative load, positive budgets, tau in (0, 1).
		if math.IsNaN(load) || load < 0 {
			load = 0
		}
		if !(b1 > 0) || math.IsInf(b1, 0) {
			b1 = 1
		}
		if !(b2 > 0) || math.IsInf(b2, 0) {
			b2 = 2
		}
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		if !(tau > 0) || !(tau < 1) {
			tau = 0.38
		}

		s1, l1 := planLevel(load/b1, tau)
		s2, l2 := planLevel(load/b2, tau)

		for _, pair := range []struct {
			s State
			l float64
		}{{s1, l1}, {s2, l2}} {
			if math.IsNaN(pair.l) || pair.l < math.Min(tau, 1) || pair.l > 1 {
				t.Fatalf("cut level %v outside [%v, 1] (load=%v tau=%v)",
					pair.l, math.Min(tau, 1), load, tau)
			}
			switch pair.s {
			case StateOK:
				if pair.l != 1 {
					t.Fatalf("ok state with cut level %v", pair.l)
				}
			case StateShedding:
				if pair.l != tau {
					t.Fatalf("shedding state with level %v, want the floor %v", pair.l, tau)
				}
			}
		}
		// Monotone in budget: more capacity never plans deeper cuts or a
		// more severe ladder position.
		if l2 < l1 {
			t.Fatalf("quality not monotone in budget: level(b=%v)=%v > level(b=%v)=%v (load=%v)",
				b1, l1, b2, l2, load)
		}
		if s2 > s1 {
			t.Fatalf("severity not monotone in budget: state(b=%v)=%v, state(b=%v)=%v",
				b1, s1, b2, s2)
		}
	})
}
