package governor

import (
	"testing"
	"time"

	"goodenough/internal/obs"
)

// benchTick drives the per-quantum control step over a fixed in-flight
// population with a synthetic clock. The BENCH_BASELINE gate holds this at
// 0 allocs/op: the tick is the piece that runs forever inside geserve, so
// it must never feed the GC.
func benchTick(b *testing.B, inflight int, budget float64) {
	b.Helper()
	now := time.Unix(1_700_000_000, 0)
	queue := 3
	g, err := New(Config{
		Budget:        budget,
		Quantum:       100 * time.Millisecond,
		QGE:           0.9,
		NominalDemand: time.Second,
		QueueLen:      func() int { return queue },
		Now:           func() time.Time { return now },
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < inflight; i++ {
		// Huge demands: the population never saturates or finishes, so
		// every iteration meters the full set.
		g.Register(1e9, func() {}, obs.SpanContext{})
	}
	g.tick(now) // warm the scratch slices
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(100 * time.Millisecond)
		g.tick(now)
	}
}

// BenchmarkGovernorTick is the steady-state path: load fits the budget,
// nothing is cut, the meter still walks the whole in-flight set.
func BenchmarkGovernorTick(b *testing.B) { benchTick(b, 64, 128) }

// BenchmarkGovernorTickOverload keeps the governor permanently over
// budget: water-filling metering, ladder bookkeeping, and cut planning all
// run every quantum (the population is cut once, then the scan skips the
// cut tickets — the worst realistic recurring cost).
func BenchmarkGovernorTickOverload(b *testing.B) { benchTick(b, 64, 8) }
