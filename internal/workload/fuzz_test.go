package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace hardens the trace parser: arbitrary bytes must either
// parse into a trace that materializes cleanly or return an error —
// never panic, and never produce invalid jobs.
func FuzzReadTrace(f *testing.F) {
	f.Add(`{"jobs":[{"release":0,"deadline":0.15,"demand":300}]}`)
	f.Add(`{"jobs":[]}`)
	f.Add(`{"comment":"x","jobs":[{"release":1,"deadline":2,"demand":5},{"release":1.5,"deadline":3,"demand":7}]}`)
	f.Add(`{"jobs":[{"release":2,"deadline":1,"demand":5}]}`) // corrupt
	f.Add(`not json at all`)
	f.Add(`{"jobs":[{"release":-1,"deadline":-2,"demand":-3}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		jobs, err := tr.Materialize()
		if err != nil {
			return
		}
		for i, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("materialized invalid job %d: %v", i, err)
			}
		}
		// A successfully materialized trace must survive a write/read
		// round trip.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("re-serialization failed: %v", err)
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.Jobs) != len(tr.Jobs) {
			t.Fatalf("round trip changed job count: %d vs %d", len(back.Jobs), len(tr.Jobs))
		}
	})
}
