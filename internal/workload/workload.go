// Package workload generates the paper's synthetic web-search request
// streams and provides trace import/export.
//
// Requests arrive as a Poisson process with a configurable rate λ
// (requests/second). Each request's service demand follows a bounded Pareto
// distribution (paper defaults α=3, xmin=130, xmax=1000 processing units).
// The response window (deadline − release) is either fixed at 150 ms
// (paper §IV-B) or uniform in [150 ms, 500 ms] (the Fig. 4 variant).
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"goodenough/internal/job"
	"goodenough/internal/rng"
)

// Spec describes a synthetic workload.
type Spec struct {
	// ArrivalRate is the Poisson rate λ in requests per second.
	ArrivalRate float64
	// ParetoAlpha, Xmin, Xmax parameterize the bounded Pareto demand
	// distribution in processing units.
	ParetoAlpha float64
	Xmin        float64
	Xmax        float64
	// Window is the fixed response window in seconds (deadline − release).
	// Ignored when RandomWindow is true.
	Window float64
	// RandomWindow draws each window uniformly from [WindowMin, WindowMax]
	// (the Fig. 4 "random deadline interval" model).
	RandomWindow bool
	WindowMin    float64
	WindowMax    float64
	// Duration is the span of arrivals in seconds.
	Duration float64
	// Seed makes the stream reproducible.
	Seed uint64
	// Burst, when non-nil, replaces the homogeneous Poisson process with a
	// two-phase Markov-modulated Poisson process (MMPP): arrivals alternate
	// between a high-rate and a low-rate phase with exponentially
	// distributed phase durations — bursty traffic, a robustness probe for
	// the online quality monitor. ArrivalRate is ignored when set.
	Burst *Burst
	// Classes, when non-empty, makes the workload a weighted mixture: each
	// arrival draws a class by weight and takes its demand distribution
	// and response window from that class (the top-level Pareto/window
	// fields are then ignored). This models mixed services — e.g. an
	// interactive tier with tight windows plus an analytics tier with
	// heavy demands — the "other big-data applications" of the paper's
	// future work.
	Classes []Class
}

// Burst parameterizes the two-phase MMPP arrival process.
type Burst struct {
	// HighRate and LowRate are the phase arrival rates in req/s.
	HighRate float64
	LowRate  float64
	// MeanHigh and MeanLow are the expected phase durations in seconds.
	MeanHigh float64
	MeanLow  float64
}

// Validate reports whether the burst model is usable.
func (b Burst) Validate() error {
	if b.HighRate <= 0 || b.LowRate <= 0 {
		return fmt.Errorf("workload: burst rates must be positive, got %v/%v", b.HighRate, b.LowRate)
	}
	if b.MeanHigh <= 0 || b.MeanLow <= 0 {
		return fmt.Errorf("workload: burst phase durations must be positive, got %v/%v",
			b.MeanHigh, b.MeanLow)
	}
	return nil
}

// MeanRate returns the long-run average arrival rate of the MMPP.
func (b Burst) MeanRate() float64 {
	return (b.HighRate*b.MeanHigh + b.LowRate*b.MeanLow) / (b.MeanHigh + b.MeanLow)
}

// Class is one component of a workload mixture.
type Class struct {
	// Name labels the class in traces and reports.
	Name string
	// Weight is the relative arrival share (any positive scale).
	Weight float64
	// ParetoAlpha, Xmin, Xmax parameterize the class's demand
	// distribution.
	ParetoAlpha float64
	Xmin        float64
	Xmax        float64
	// Window is the class's fixed response window in seconds, unless
	// RandomWindow selects uniform [WindowMin, WindowMax].
	Window       float64
	RandomWindow bool
	WindowMin    float64
	WindowMax    float64
}

// Validate reports whether the class is usable.
func (c Class) Validate() error {
	if c.Weight <= 0 {
		return fmt.Errorf("workload: class %q weight must be positive, got %v", c.Name, c.Weight)
	}
	if c.ParetoAlpha <= 0 || c.Xmin <= 0 || c.Xmax < c.Xmin {
		return fmt.Errorf("workload: class %q invalid Pareto parameters alpha=%v xmin=%v xmax=%v",
			c.Name, c.ParetoAlpha, c.Xmin, c.Xmax)
	}
	if c.RandomWindow {
		if c.WindowMin <= 0 || c.WindowMax < c.WindowMin {
			return fmt.Errorf("workload: class %q invalid random window [%v, %v]",
				c.Name, c.WindowMin, c.WindowMax)
		}
	} else if c.Window <= 0 {
		return fmt.Errorf("workload: class %q window must be positive, got %v", c.Name, c.Window)
	}
	return nil
}

// DefaultSpec returns the paper's workload parameters at the given arrival
// rate: bounded Pareto(3, 130, 1000) demands, 150 ms windows, 600 s of
// arrivals (10 simulated minutes).
func DefaultSpec(arrivalRate float64, seed uint64) Spec {
	return Spec{
		ArrivalRate: arrivalRate,
		ParetoAlpha: 3,
		Xmin:        130,
		Xmax:        1000,
		Window:      0.150,
		WindowMin:   0.150,
		WindowMax:   0.500,
		Duration:    600,
		Seed:        seed,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Burst != nil {
		if err := s.Burst.Validate(); err != nil {
			return err
		}
	} else if s.ArrivalRate <= 0 {
		return fmt.Errorf("workload: arrival rate must be positive, got %v", s.ArrivalRate)
	}
	if len(s.Classes) > 0 {
		for _, c := range s.Classes {
			if err := c.Validate(); err != nil {
				return err
			}
		}
	} else {
		if s.ParetoAlpha <= 0 || s.Xmin <= 0 || s.Xmax < s.Xmin {
			return fmt.Errorf("workload: invalid Pareto parameters alpha=%v xmin=%v xmax=%v",
				s.ParetoAlpha, s.Xmin, s.Xmax)
		}
		if s.RandomWindow {
			if s.WindowMin <= 0 || s.WindowMax < s.WindowMin {
				return fmt.Errorf("workload: invalid random window [%v, %v]", s.WindowMin, s.WindowMax)
			}
		} else if s.Window <= 0 {
			return fmt.Errorf("workload: window must be positive, got %v", s.Window)
		}
	}
	if s.Duration <= 0 {
		return fmt.Errorf("workload: duration must be positive, got %v", s.Duration)
	}
	return nil
}

// MeanDemand returns the analytic mean service demand in processing units
// (the weighted mixture mean when Classes are set).
func (s Spec) MeanDemand() float64 {
	if len(s.Classes) == 0 {
		return rng.BoundedParetoMean(s.ParetoAlpha, s.Xmin, s.Xmax)
	}
	totalW, mean := 0.0, 0.0
	for _, c := range s.Classes {
		mean += c.Weight * rng.BoundedParetoMean(c.ParetoAlpha, c.Xmin, c.Xmax)
		totalW += c.Weight
	}
	if totalW == 0 {
		return 0
	}
	return mean / totalW
}

// OfferedLoad returns the offered work in processing units per second
// (λ × mean demand).
func (s Spec) OfferedLoad() float64 { return s.ArrivalRate * s.MeanDemand() }

// Generator lazily produces the job stream. Streams for inter-arrival
// gaps, demands, and windows are split from the seed so that, e.g.,
// changing the window model does not perturb the demand sequence — a
// property the paired experiments (Fig. 3 vs Fig. 4) rely on.
type Generator struct {
	spec     Spec
	arrivals *rng.Source
	demands  *rng.Source
	windows  *rng.Source
	classes  *rng.Source
	phases   *rng.Source
	nextID   int
	clock    float64
	done     bool

	// MMPP state.
	inHigh   bool
	phaseEnd float64
}

// NewGenerator builds a generator for the spec. It panics if the spec is
// invalid; call Validate first for graceful handling.
func NewGenerator(spec Spec) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	root := rng.New(spec.Seed)
	g := &Generator{
		spec:     spec,
		arrivals: root.Split(),
		demands:  root.Split(),
		windows:  root.Split(),
		classes:  root.Split(),
		phases:   root.Split(),
	}
	if spec.Burst != nil {
		g.inHigh = true
		g.phaseEnd = g.phases.Exp(1 / spec.Burst.MeanHigh)
	}
	return g
}

// Next returns the next job, or nil when the arrival window is exhausted.
func (g *Generator) Next() *job.Job {
	return g.NextInto(nil)
}

// NextInto is Next with job recycling: when reuse is non-nil its storage is
// reinitialized in place instead of allocating, so a caller that owns the
// full job lifecycle (the fleet simulation recycles finalized jobs) keeps
// the steady-state arrival path allocation-free. The draw sequence is
// identical to Next — recycling never perturbs determinism.
func (g *Generator) NextInto(reuse *job.Job) *job.Job {
	if g.done {
		return nil
	}
	g.advanceClock()
	if g.clock > g.spec.Duration {
		g.done = true
		return nil
	}
	shape := g.pickShape()
	demand := g.demands.BoundedPareto(shape.ParetoAlpha, shape.Xmin, shape.Xmax)
	window := shape.Window
	if shape.RandomWindow {
		window = g.windows.Uniform(shape.WindowMin, shape.WindowMax)
	}
	j := reuse
	if j == nil {
		j = job.New(g.nextID, g.clock, g.clock+window, demand)
	} else {
		*j = job.Job{
			ID:       g.nextID,
			Release:  g.clock,
			Deadline: g.clock + window,
			Demand:   demand,
			Target:   demand,
			Core:     -1,
			State:    job.StateWaiting,
		}
	}
	g.nextID++
	return j
}

// advanceClock draws the next arrival instant: a plain exponential gap for
// homogeneous Poisson, or a piecewise-exponential walk across MMPP phases.
// Restarting the draw at a phase boundary is exact for a Poisson process
// with piecewise-constant rate (memorylessness).
func (g *Generator) advanceClock() {
	b := g.spec.Burst
	if b == nil {
		g.clock += g.arrivals.Exp(g.spec.ArrivalRate)
		return
	}
	for {
		rate := b.LowRate
		meanNext := b.MeanHigh // duration of the NEXT phase if we switch
		if g.inHigh {
			rate = b.HighRate
			meanNext = b.MeanLow
		}
		gap := g.arrivals.Exp(rate)
		if g.clock+gap <= g.phaseEnd {
			g.clock += gap
			return
		}
		// Cross into the next phase and redraw.
		g.clock = g.phaseEnd
		g.inHigh = !g.inHigh
		g.phaseEnd = g.clock + g.phases.Exp(1/meanNext)
		if g.clock > g.spec.Duration {
			return // exhausted mid-switch; Next() will close the stream
		}
	}
}

// pickShape selects the demand/window parameters for the next arrival: the
// spec's own fields for single-class workloads, or a weighted class draw.
func (g *Generator) pickShape() Class {
	s := g.spec
	if len(s.Classes) == 0 {
		return Class{
			ParetoAlpha: s.ParetoAlpha, Xmin: s.Xmin, Xmax: s.Xmax,
			Window: s.Window, RandomWindow: s.RandomWindow,
			WindowMin: s.WindowMin, WindowMax: s.WindowMax,
		}
	}
	total := 0.0
	for _, c := range s.Classes {
		total += c.Weight
	}
	pick := g.classes.Float64() * total
	for _, c := range s.Classes {
		pick -= c.Weight
		if pick < 0 {
			return c
		}
	}
	return s.Classes[len(s.Classes)-1]
}

// All materializes the entire stream. Convenient for traces and tests; the
// simulator itself pulls jobs lazily via Next.
func (g *Generator) All() []*job.Job {
	var jobs []*job.Job
	for {
		j := g.Next()
		if j == nil {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

// Source yields jobs in non-decreasing release order; nil means exhausted.
// Generator produces synthetic streams; Replayer replays recorded traces.
type Source interface {
	Next() *job.Job
}

// Trace is a serializable recorded workload, so experiments can be re-run
// on the exact same request stream (and users can import their own traces).
type Trace struct {
	// Comment is free-form provenance.
	Comment string `json:"comment,omitempty"`
	// Spec, when present, records the generator parameters.
	Spec *Spec `json:"spec,omitempty"`
	// Jobs lists the requests in arrival order.
	Jobs []TraceJob `json:"jobs"`
}

// TraceJob is one request in a trace.
type TraceJob struct {
	Release  float64 `json:"release"`
	Deadline float64 `json:"deadline"`
	Demand   float64 `json:"demand"`
}

// Record converts a job stream into a trace.
func Record(jobs []*job.Job, spec *Spec, comment string) *Trace {
	t := &Trace{Comment: comment, Spec: spec, Jobs: make([]TraceJob, len(jobs))}
	for i, j := range jobs {
		t.Jobs[i] = TraceJob{Release: j.Release, Deadline: j.Deadline, Demand: j.Demand}
	}
	return t
}

// Jobs materializes the trace back into job objects with fresh IDs.
func (t *Trace) Materialize() ([]*job.Job, error) {
	jobs := make([]*job.Job, len(t.Jobs))
	for i, tj := range t.Jobs {
		j := job.New(i, tj.Release, tj.Deadline, tj.Demand)
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace entry %d: %w", i, err)
		}
		if i > 0 && tj.Release < t.Jobs[i-1].Release {
			return nil, fmt.Errorf("workload: trace entry %d out of arrival order", i)
		}
		jobs[i] = j
	}
	return jobs, nil
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace parses a JSON trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return &t, nil
}

// Replayer replays a trace as a Source, minting fresh job objects so the
// same trace can drive many runs.
type Replayer struct {
	trace *Trace
	pos   int
}

// NewReplayer validates the trace order eagerly and returns a Source over
// it.
func NewReplayer(t *Trace) (*Replayer, error) {
	if _, err := t.Materialize(); err != nil {
		return nil, err
	}
	return &Replayer{trace: t}, nil
}

// Next implements Source.
func (r *Replayer) Next() *job.Job {
	if r.pos >= len(r.trace.Jobs) {
		return nil
	}
	tj := r.trace.Jobs[r.pos]
	j := job.New(r.pos, tj.Release, tj.Deadline, tj.Demand)
	r.pos++
	return j
}

// Reset rewinds the replayer to the start of the trace.
func (r *Replayer) Reset() { r.pos = 0 }

// Stats summarizes a job stream for sanity checks and reports.
type Stats struct {
	Count       int
	MeanDemand  float64
	MaxDemand   float64
	MinDemand   float64
	MeanWindow  float64
	TotalWork   float64
	Span        float64 // last release − first release
	ArrivalRate float64 // empirical
}

// Summarize computes stream statistics.
func Summarize(jobs []*job.Job) Stats {
	if len(jobs) == 0 {
		return Stats{}
	}
	s := Stats{Count: len(jobs), MinDemand: math.Inf(1)}
	for _, j := range jobs {
		s.TotalWork += j.Demand
		s.MeanWindow += j.Deadline - j.Release
		if j.Demand > s.MaxDemand {
			s.MaxDemand = j.Demand
		}
		if j.Demand < s.MinDemand {
			s.MinDemand = j.Demand
		}
	}
	s.MeanDemand = s.TotalWork / float64(len(jobs))
	s.MeanWindow /= float64(len(jobs))
	s.Span = jobs[len(jobs)-1].Release - jobs[0].Release
	if s.Span > 0 {
		s.ArrivalRate = float64(len(jobs)-1) / s.Span
	}
	return s
}
