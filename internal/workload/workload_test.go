package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"goodenough/internal/job"
	"goodenough/internal/rng"
)

func TestDefaultSpecMatchesPaper(t *testing.T) {
	s := DefaultSpec(154, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.ParetoAlpha != 3 || s.Xmin != 130 || s.Xmax != 1000 {
		t.Fatalf("Pareto parameters differ from paper: %+v", s)
	}
	if s.Window != 0.150 {
		t.Fatalf("window = %v, paper uses 150 ms", s.Window)
	}
	if s.Duration != 600 {
		t.Fatalf("duration = %v, paper simulates 10 minutes", s.Duration)
	}
	if math.Abs(s.MeanDemand()-192) > 1 {
		t.Fatalf("mean demand = %v, paper quotes ~192", s.MeanDemand())
	}
	// Offered load at the critical rate.
	if math.Abs(s.OfferedLoad()-154*s.MeanDemand()) > 1e-9 {
		t.Fatal("offered load formula broken")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := DefaultSpec(150, 1)
	mutations := []func(*Spec){
		func(s *Spec) { s.ArrivalRate = 0 },
		func(s *Spec) { s.ParetoAlpha = -1 },
		func(s *Spec) { s.Xmin = 0 },
		func(s *Spec) { s.Xmax = 50 }, // below xmin
		func(s *Spec) { s.Window = 0 },
		func(s *Spec) { s.Duration = 0 },
		func(s *Spec) { s.RandomWindow = true; s.WindowMin = 0 },
		func(s *Spec) { s.RandomWindow = true; s.WindowMax = 0.01 },
	}
	for i, mut := range mutations {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, s)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(DefaultSpec(150, 42)).All()
	b := NewGenerator(DefaultSpec(150, 42)).All()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Release != b[i].Release || a[i].Demand != b[i].Demand || a[i].Deadline != b[i].Deadline {
			t.Fatalf("streams diverge at job %d", i)
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a := NewGenerator(DefaultSpec(150, 1)).All()
	b := NewGenerator(DefaultSpec(150, 2)).All()
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Release != b[i].Release {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical streams")
		}
	}
}

func TestGeneratorProperties(t *testing.T) {
	spec := DefaultSpec(150, 7)
	spec.Duration = 100
	jobs := NewGenerator(spec).All()
	if len(jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	prev := 0.0
	for i, j := range jobs {
		if j.ID != i {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if j.Release < prev {
			t.Fatalf("arrivals out of order at job %d", i)
		}
		prev = j.Release
		if j.Release > spec.Duration {
			t.Fatalf("arrival beyond duration: %v", j.Release)
		}
		if j.Demand < spec.Xmin || j.Demand > spec.Xmax {
			t.Fatalf("demand out of Pareto bounds: %v", j.Demand)
		}
		if w := j.Deadline - j.Release; math.Abs(w-spec.Window) > 1e-12 {
			t.Fatalf("fixed window violated: %v", w)
		}
	}
}

func TestGeneratorRateAndDemand(t *testing.T) {
	spec := DefaultSpec(150, 3)
	jobs := NewGenerator(spec).All()
	st := Summarize(jobs)
	// 600 s at λ=150 → ~90000 jobs; allow 3% statistical slack.
	if math.Abs(st.ArrivalRate-150)/150 > 0.03 {
		t.Fatalf("empirical rate = %v, want ~150", st.ArrivalRate)
	}
	if math.Abs(st.MeanDemand-spec.MeanDemand())/spec.MeanDemand() > 0.03 {
		t.Fatalf("empirical mean demand = %v, want ~%v", st.MeanDemand, spec.MeanDemand())
	}
}

func TestRandomWindow(t *testing.T) {
	spec := DefaultSpec(150, 5)
	spec.RandomWindow = true
	spec.Duration = 60
	jobs := NewGenerator(spec).All()
	sawShort, sawLong := false, false
	for _, j := range jobs {
		w := j.Deadline - j.Release
		if w < spec.WindowMin-1e-12 || w > spec.WindowMax+1e-12 {
			t.Fatalf("random window out of [%v,%v]: %v", spec.WindowMin, spec.WindowMax, w)
		}
		if w < 0.25 {
			sawShort = true
		}
		if w > 0.4 {
			sawLong = true
		}
	}
	if !sawShort || !sawLong {
		t.Fatal("random windows do not span the configured range")
	}
}

func TestRandomWindowPreservesDemandStream(t *testing.T) {
	// Splitting the RNG streams means toggling the window model must not
	// perturb demands — Fig. 3 vs Fig. 4 compare like-for-like workloads.
	fixed := DefaultSpec(150, 9)
	fixed.Duration = 30
	random := fixed
	random.RandomWindow = true
	a := NewGenerator(fixed).All()
	b := NewGenerator(random).All()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Demand != b[i].Demand || a[i].Release != b[i].Release {
			t.Fatalf("demand/arrival stream perturbed at %d", i)
		}
	}
}

func TestNextAfterExhaustion(t *testing.T) {
	spec := DefaultSpec(150, 1)
	spec.Duration = 1
	g := NewGenerator(spec)
	for g.Next() != nil {
	}
	if g.Next() != nil {
		t.Fatal("generator should stay exhausted")
	}
}

func TestNewGeneratorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec did not panic")
		}
	}()
	NewGenerator(Spec{})
}

func TestTraceRoundTrip(t *testing.T) {
	spec := DefaultSpec(150, 11)
	spec.Duration = 5
	jobs := NewGenerator(spec).All()
	tr := Record(jobs, &spec, "unit test")
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Comment != "unit test" {
		t.Fatalf("comment lost: %q", back.Comment)
	}
	if back.Spec == nil || back.Spec.ArrivalRate != 150 {
		t.Fatal("spec lost in round trip")
	}
	restored, err := back.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(jobs) {
		t.Fatalf("job count changed: %d vs %d", len(restored), len(jobs))
	}
	for i := range jobs {
		if restored[i].Demand != jobs[i].Demand ||
			restored[i].Release != jobs[i].Release ||
			restored[i].Deadline != jobs[i].Deadline {
			t.Fatalf("job %d changed in round trip", i)
		}
	}
}

func TestMaterializeRejectsCorruptTraces(t *testing.T) {
	bad := &Trace{Jobs: []TraceJob{{Release: 1, Deadline: 0.5, Demand: 100}}}
	if _, err := bad.Materialize(); err == nil {
		t.Error("deadline-before-release trace accepted")
	}
	outOfOrder := &Trace{Jobs: []TraceJob{
		{Release: 2, Deadline: 3, Demand: 100},
		{Release: 1, Deadline: 2, Demand: 100},
	}}
	if _, err := outOfOrder.Materialize(); err == nil {
		t.Error("out-of-order trace accepted")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Count != 0 || st.TotalWork != 0 {
		t.Fatalf("empty summary = %+v", st)
	}
}

func BenchmarkGenerator(b *testing.B) {
	spec := DefaultSpec(200, 1)
	spec.Duration = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGenerator(spec)
		for g.Next() != nil {
		}
	}
}

func TestReplayerRoundTrip(t *testing.T) {
	spec := DefaultSpec(150, 21)
	spec.Duration = 5
	jobs := NewGenerator(spec).All()
	tr := Record(jobs, &spec, "")
	rep, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		j := rep.Next()
		if j == nil {
			break
		}
		if j.Release != jobs[count].Release || j.Demand != jobs[count].Demand {
			t.Fatalf("replayed job %d differs", count)
		}
		if j.ID != count {
			t.Fatalf("replayed IDs not sequential: %d", j.ID)
		}
		count++
	}
	if count != len(jobs) {
		t.Fatalf("replayed %d of %d jobs", count, len(jobs))
	}
	// Exhausted replayer stays exhausted; Reset rewinds.
	if rep.Next() != nil {
		t.Fatal("exhausted replayer yielded a job")
	}
	rep.Reset()
	if rep.Next() == nil {
		t.Fatal("reset replayer yielded nothing")
	}
}

func TestReplayerMintsFreshJobs(t *testing.T) {
	tr := &Trace{Jobs: []TraceJob{{Release: 0, Deadline: 1, Demand: 100}}}
	rep, err := NewReplayer(tr)
	if err != nil {
		t.Fatal(err)
	}
	a := rep.Next()
	a.Advance(50) // mutate the first copy
	rep.Reset()
	b := rep.Next()
	if b.Processed != 0 {
		t.Fatal("replayer shared job state across runs")
	}
}

func TestNewReplayerValidates(t *testing.T) {
	bad := &Trace{Jobs: []TraceJob{{Release: 2, Deadline: 1, Demand: 5}}}
	if _, err := NewReplayer(bad); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func mixedSpec(rate float64, seed uint64) Spec {
	s := DefaultSpec(rate, seed)
	s.Classes = []Class{
		{Name: "interactive", Weight: 3, ParetoAlpha: 3, Xmin: 130, Xmax: 1000, Window: 0.150},
		{Name: "analytics", Weight: 1, ParetoAlpha: 2, Xmin: 500, Xmax: 4000,
			RandomWindow: true, WindowMin: 0.5, WindowMax: 2.0},
	}
	return s
}

func TestMixedWorkloadValidation(t *testing.T) {
	s := mixedSpec(100, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mixedSpec(100, 1)
	bad.Classes[0].Weight = 0
	if bad.Validate() == nil {
		t.Error("zero-weight class accepted")
	}
	bad = mixedSpec(100, 1)
	bad.Classes[1].Xmax = 100 // below Xmin
	if bad.Validate() == nil {
		t.Error("inverted class Pareto bounds accepted")
	}
	bad = mixedSpec(100, 1)
	bad.Classes[0].Window = 0
	if bad.Validate() == nil {
		t.Error("zero class window accepted")
	}
	bad = mixedSpec(100, 1)
	bad.Classes[1].WindowMin = 0
	if bad.Validate() == nil {
		t.Error("zero random-window bound accepted")
	}
}

func TestMixedWorkloadGeneration(t *testing.T) {
	s := mixedSpec(200, 5)
	s.Duration = 60
	jobs := NewGenerator(s).All()
	if len(jobs) == 0 {
		t.Fatal("no jobs")
	}
	interactive, analytics := 0, 0
	for _, j := range jobs {
		w := j.Deadline - j.Release
		switch {
		case math.Abs(w-0.150) < 1e-9 && j.Demand <= 1000:
			interactive++
		case w >= 0.5-1e-9 && w <= 2.0+1e-9 && j.Demand >= 500 && j.Demand <= 4000:
			analytics++
		default:
			t.Fatalf("job fits no class: demand=%v window=%v", j.Demand, w)
		}
	}
	// Weights 3:1 → roughly 75% / 25%.
	fi := float64(interactive) / float64(len(jobs))
	if fi < 0.70 || fi > 0.80 {
		t.Fatalf("interactive share = %v, want ~0.75", fi)
	}
	if analytics == 0 {
		t.Fatal("no analytics jobs drawn")
	}
}

func TestMixedMeanDemand(t *testing.T) {
	s := mixedSpec(100, 1)
	m := s.MeanDemand()
	mi := rngBoundedParetoMean(3, 130, 1000)
	ma := rngBoundedParetoMean(2, 500, 4000)
	want := (3*mi + ma) / 4
	if math.Abs(m-want) > 1e-9 {
		t.Fatalf("mixture mean = %v, want %v", m, want)
	}
}

func TestMixedDeterminism(t *testing.T) {
	a := NewGenerator(mixedSpecShort(7)).All()
	b := NewGenerator(mixedSpecShort(7)).All()
	if len(a) != len(b) {
		t.Fatal("mixed streams differ in length")
	}
	for i := range a {
		if a[i].Demand != b[i].Demand || a[i].Deadline != b[i].Deadline {
			t.Fatalf("mixed streams diverge at %d", i)
		}
	}
}

func rngBoundedParetoMean(alpha, xmin, xmax float64) float64 {
	return rng.BoundedParetoMean(alpha, xmin, xmax)
}

func mixedSpecShort(seed uint64) Spec {
	s := mixedSpec(150, seed)
	s.Duration = 10
	return s
}

func TestBurstValidation(t *testing.T) {
	good := Burst{HighRate: 250, LowRate: 80, MeanHigh: 2, MeanLow: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Burst{
		{HighRate: 0, LowRate: 80, MeanHigh: 2, MeanLow: 5},
		{HighRate: 250, LowRate: -1, MeanHigh: 2, MeanLow: 5},
		{HighRate: 250, LowRate: 80, MeanHigh: 0, MeanLow: 5},
		{HighRate: 250, LowRate: 80, MeanHigh: 2, MeanLow: 0},
	}
	for i, b := range bad {
		if b.Validate() == nil {
			t.Errorf("bad burst %d accepted", i)
		}
	}
	spec := DefaultSpec(100, 1)
	spec.Burst = &bad[0]
	if spec.Validate() == nil {
		t.Error("spec with bad burst accepted")
	}
	// With a valid burst, ArrivalRate may be zero.
	spec = DefaultSpec(100, 1)
	spec.ArrivalRate = 0
	spec.Burst = &good
	if err := spec.Validate(); err != nil {
		t.Fatalf("burst spec rejected: %v", err)
	}
}

func TestBurstMeanRate(t *testing.T) {
	b := Burst{HighRate: 300, LowRate: 100, MeanHigh: 1, MeanLow: 3}
	// (300·1 + 100·3)/4 = 150.
	if math.Abs(b.MeanRate()-150) > 1e-12 {
		t.Fatalf("mean rate = %v, want 150", b.MeanRate())
	}
}

func TestBurstEmpiricalRate(t *testing.T) {
	spec := DefaultSpec(0, 31)
	spec.ArrivalRate = 0
	spec.Burst = &Burst{HighRate: 300, LowRate: 100, MeanHigh: 1, MeanLow: 3}
	spec.Duration = 400
	jobs := NewGenerator(spec).All()
	st := Summarize(jobs)
	want := spec.Burst.MeanRate()
	if math.Abs(st.ArrivalRate-want)/want > 0.08 {
		t.Fatalf("empirical MMPP rate = %v, want ~%v", st.ArrivalRate, want)
	}
	// Arrivals must still be strictly ordered within duration.
	prev := 0.0
	for i, j := range jobs {
		if j.Release < prev {
			t.Fatalf("out of order at %d", i)
		}
		prev = j.Release
		if j.Release > spec.Duration {
			t.Fatalf("arrival beyond duration")
		}
	}
}

func TestBurstOverdispersion(t *testing.T) {
	// MMPP counts in fixed windows must be overdispersed relative to a
	// Poisson process of the same mean (variance > mean).
	spec := DefaultSpec(0, 33)
	spec.ArrivalRate = 0
	spec.Burst = &Burst{HighRate: 400, LowRate: 50, MeanHigh: 1, MeanLow: 1}
	spec.Duration = 300
	jobs := NewGenerator(spec).All()
	const window = 0.5
	counts := make([]float64, int(spec.Duration/window))
	for _, j := range jobs {
		idx := int(j.Release / window)
		if idx < len(counts) {
			counts[idx]++
		}
	}
	mean, variance := 0.0, 0.0
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	for _, c := range counts {
		variance += (c - mean) * (c - mean)
	}
	variance /= float64(len(counts))
	if variance < 2*mean {
		t.Fatalf("MMPP not overdispersed: var %v vs mean %v", variance, mean)
	}
}

func TestBurstDeterminism(t *testing.T) {
	mk := func() []*job.Job {
		spec := DefaultSpec(0, 37)
		spec.ArrivalRate = 0
		spec.Burst = &Burst{HighRate: 250, LowRate: 80, MeanHigh: 2, MeanLow: 2}
		spec.Duration = 20
		return NewGenerator(spec).All()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("burst streams differ in length")
	}
	for i := range a {
		if a[i].Release != b[i].Release {
			t.Fatalf("burst streams diverge at %d", i)
		}
	}
}
