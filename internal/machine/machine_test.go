package machine

import (
	"math"
	"strings"
	"testing"

	"goodenough/internal/job"
	"goodenough/internal/power"
)

func model() power.Model { return power.Default() }

func bind(j *job.Job, core int) *job.Job {
	j.Core = core
	j.State = job.StateAssigned
	return j
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0, model()); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewServer(4, power.Model{A: -1, Beta: 2}); err == nil {
		t.Error("invalid model accepted")
	}
	s, err := NewServer(16, model())
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 16 {
		t.Fatalf("M = %d", s.M())
	}
}

func TestSingleJobRunsToCompletion(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.150, 300), 0)
	// 300 units at 2 GHz (2000 u/s) takes 0.15 s exactly.
	if err := c.SetPlan([]Entry{{Job: j, Speed: 2}}); err != nil {
		t.Fatal(err)
	}
	var finals []Reason
	c.Advance(model(), 0.2, func(_ *job.Job, r Reason) { finals = append(finals, r) })
	if len(finals) != 1 || finals[0] != ReasonCompleted {
		t.Fatalf("finalizations = %v", finals)
	}
	if math.Abs(j.Processed-300) > 1e-6 {
		t.Fatalf("processed = %v", j.Processed)
	}
	if j.State != job.StateFinalized {
		t.Fatalf("state = %v", j.State)
	}
	// Energy: 20 W for 0.15 s = 3 J.
	if math.Abs(c.Energy()-3) > 1e-9 {
		t.Fatalf("energy = %v, want 3", c.Energy())
	}
	if c.Completed() != 1 || c.Expired() != 0 {
		t.Fatalf("counters = %d/%d", c.Completed(), c.Expired())
	}
}

func TestDeadlineTruncation(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.1, 1000), 0)
	// 1 GHz can process only 100 units before the 0.1 s deadline.
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	var reason Reason
	c.Advance(model(), 0.5, func(_ *job.Job, r Reason) { reason = r })
	if reason != ReasonExpired {
		t.Fatalf("reason = %v, want expired", reason)
	}
	if math.Abs(j.Processed-100) > 1e-6 {
		t.Fatalf("processed = %v, want 100 (truncated at deadline)", j.Processed)
	}
	// The core must not burn energy past the deadline: 5 W · 0.1 s.
	if math.Abs(c.Energy()-0.5) > 1e-9 {
		t.Fatalf("energy = %v, want 0.5", c.Energy())
	}
}

func TestSequentialEDFExecution(t *testing.T) {
	c := NewCore(0)
	j1 := bind(job.New(1, 0, 0.1, 100), 0)
	j2 := bind(job.New(2, 0, 0.4, 300), 0)
	c.SetPlan([]Entry{{Job: j1, Speed: 1}, {Job: j2, Speed: 1}})
	order := []int{}
	c.Advance(model(), 1.0, func(j *job.Job, r Reason) {
		order = append(order, j.ID)
		if r != ReasonCompleted {
			t.Fatalf("job %d reason %v", j.ID, r)
		}
	})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("completion order = %v", order)
	}
	// j1 runs [0, 0.1], j2 runs [0.1, 0.4]; both at 1 GHz → 5 W · 0.4 s.
	if math.Abs(c.Energy()-2) > 1e-9 {
		t.Fatalf("energy = %v, want 2", c.Energy())
	}
}

func TestCutTargetCompletesEarly(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.15, 1000), 0)
	j.SetTarget(200) // AES cut
	c.SetPlan([]Entry{{Job: j, Speed: 2}})
	var reason Reason
	c.Advance(model(), 0.15, func(_ *job.Job, r Reason) { reason = r })
	if reason != ReasonCompleted {
		t.Fatalf("cut job reason = %v, want completed", reason)
	}
	if math.Abs(j.Processed-200) > 1e-6 {
		t.Fatalf("processed = %v, want the 200-unit target", j.Processed)
	}
	// Runs 0.1 s at 2 GHz then idles: energy = 20·0.1 = 2 J.
	if math.Abs(c.Energy()-2) > 1e-9 {
		t.Fatalf("energy = %v, want 2", c.Energy())
	}
}

func TestPartialAdvanceResumes(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.5, 400), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	c.Advance(model(), 0.1, nil)
	if math.Abs(j.Processed-100) > 1e-6 {
		t.Fatalf("processed after 0.1 s = %v", j.Processed)
	}
	if c.Now() != 0.1 {
		t.Fatalf("clock = %v", c.Now())
	}
	done := false
	c.Advance(model(), 0.5, func(_ *job.Job, r Reason) { done = r == ReasonCompleted })
	if !done {
		t.Fatal("job did not complete on resume")
	}
	if math.Abs(j.Processed-400) > 1e-6 {
		t.Fatalf("processed = %v", j.Processed)
	}
}

func TestReplanMidFlight(t *testing.T) {
	// The scheduler may change speed mid-job (e.g. compensation).
	c := NewCore(0)
	j := bind(job.New(1, 0, 1.0, 1000), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	c.Advance(model(), 0.2, nil) // 200 units done
	c.SetPlan([]Entry{{Job: j, Speed: 2}})
	c.Advance(model(), 0.6, nil) // 0.4 s at 2 GHz = 800 units → done
	if !j.Done() {
		t.Fatalf("job not done after replan: %v", j.Processed)
	}
	// Energy = 5·0.2 + 20·0.4 = 9 J.
	if math.Abs(c.Energy()-9) > 1e-9 {
		t.Fatalf("energy = %v, want 9", c.Energy())
	}
}

func TestZeroSpeedJobExpiresQuietly(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.1, 100), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 0}})
	var reason Reason
	fired := false
	c.Advance(model(), 0.5, func(_ *job.Job, r Reason) { reason, fired = r, true })
	if !fired || reason != ReasonExpired {
		t.Fatalf("zero-speed job should expire: fired=%v reason=%v", fired, reason)
	}
	if c.Energy() != 0 {
		t.Fatalf("idle core consumed energy %v", c.Energy())
	}
	if j.Processed != 0 {
		t.Fatalf("zero-speed job processed %v", j.Processed)
	}
}

func TestIdleProfileAccounting(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.5, 200), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 2}}) // busy 0.1 s
	c.Advance(model(), 1.0, nil)
	busy := c.BusyProfile()
	total := c.TotalProfile()
	if math.Abs(busy.Duration()-0.1) > 1e-9 {
		t.Fatalf("busy duration = %v, want 0.1", busy.Duration())
	}
	if math.Abs(busy.Mean()-2) > 1e-9 {
		t.Fatalf("busy mean speed = %v, want 2", busy.Mean())
	}
	if math.Abs(total.Duration()-1.0) > 1e-9 {
		t.Fatalf("total duration = %v, want 1.0", total.Duration())
	}
	if math.Abs(total.Mean()-0.2) > 1e-9 {
		t.Fatalf("total mean speed = %v, want 0.2", total.Mean())
	}
}

func TestSetPlanRejectsForeignJobs(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.1, 100), 3)
	if err := c.SetPlan([]Entry{{Job: j, Speed: 1}}); err == nil {
		t.Fatal("foreign job accepted")
	}
	j2 := bind(job.New(2, 0, 0.1, 100), 0)
	if err := c.SetPlan([]Entry{{Job: j2, Speed: -1}}); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestProjectedIdle(t *testing.T) {
	c := NewCore(0)
	j1 := bind(job.New(1, 0, 0.1, 100), 0)  // 1 GHz → finishes at 0.1
	j2 := bind(job.New(2, 0, 0.4, 300), 0)  // 1 GHz → finishes at 0.4
	j3 := bind(job.New(3, 0, 0.45, 900), 0) // 1 GHz → truncated at 0.45
	c.SetPlan([]Entry{{Job: j1, Speed: 1}, {Job: j2, Speed: 1}, {Job: j3, Speed: 1}})
	if got := c.ProjectedIdle(0); math.Abs(got-0.45) > 1e-9 {
		t.Fatalf("projected idle = %v, want 0.45", got)
	}
	empty := NewCore(1)
	if got := empty.ProjectedIdle(2.5); got != 2.5 {
		t.Fatalf("empty projected idle = %v, want now", got)
	}
}

func TestEarliestDeadline(t *testing.T) {
	c := NewCore(0)
	if _, ok := c.EarliestDeadline(); ok {
		t.Fatal("empty core should have no deadline")
	}
	j1 := bind(job.New(1, 0, 0.4, 100), 0)
	j2 := bind(job.New(2, 0, 0.2, 100), 0)
	c.SetPlan([]Entry{{Job: j1, Speed: 1}, {Job: j2, Speed: 1}})
	if d, ok := c.EarliestDeadline(); !ok || d != 0.2 {
		t.Fatalf("earliest deadline = %v/%v", d, ok)
	}
}

func TestServerAdvanceAggregates(t *testing.T) {
	s, _ := NewServer(2, model())
	j1 := bind(job.New(1, 0, 0.2, 200), 0)
	j2 := bind(job.New(2, 0, 0.2, 400), 1)
	s.Cores[0].SetPlan([]Entry{{Job: j1, Speed: 1}})
	s.Cores[1].SetPlan([]Entry{{Job: j2, Speed: 2}})
	count := 0
	s.Advance(0.2, func(*job.Job, Reason) { count++ })
	if count != 2 {
		t.Fatalf("finalized %d, want 2", count)
	}
	// Energy: 5·0.2 + 20·0.2 = 5 J.
	if math.Abs(s.Energy()-5) > 1e-9 {
		t.Fatalf("server energy = %v, want 5", s.Energy())
	}
	if s.Completed() != 2 || s.Expired() != 0 {
		t.Fatalf("counters = %d/%d", s.Completed(), s.Expired())
	}
	if s.Now() != 0.2 {
		t.Fatalf("server clock = %v", s.Now())
	}
}

func TestServerAdvanceBackwardsErrors(t *testing.T) {
	s, _ := NewServer(1, model())
	if err := s.Advance(1, nil); err != nil {
		t.Fatalf("forward advance: %v", err)
	}
	err := s.Advance(0.5, nil)
	if err == nil {
		t.Fatal("backwards advance did not error")
	}
	if !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("error %q does not mention backwards", err)
	}
}

func TestLoads(t *testing.T) {
	s, _ := NewServer(2, model())
	j1 := bind(job.New(1, 0, 1, 300), 0)
	j1.SetTarget(200)
	j2 := bind(job.New(2, 0, 1, 500), 1)
	s.Cores[0].SetPlan([]Entry{{Job: j1, Speed: 1}})
	s.Cores[1].SetPlan([]Entry{{Job: j2, Speed: 1}})
	loads := s.Loads()
	if math.Abs(loads[0]-200) > 1e-9 || math.Abs(loads[1]-500) > 1e-9 {
		t.Fatalf("loads = %v", loads)
	}
	if math.Abs(s.TotalLoad()-700) > 1e-9 {
		t.Fatalf("total load = %v", s.TotalLoad())
	}
}

func TestWorkEnergyConservation(t *testing.T) {
	// Total processed work must equal Σ rate·busytime, and energy must
	// equal Σ P(s)·dt — cross-check via profiles on a multi-job plan.
	c := NewCore(0)
	jobs := []*job.Job{
		bind(job.New(1, 0, 0.10, 150), 0),
		bind(job.New(2, 0, 0.25, 250), 0),
		bind(job.New(3, 0, 0.30, 900), 0), // will truncate
	}
	entries := []Entry{
		{Job: jobs[0], Speed: 1.5},
		{Job: jobs[1], Speed: 1.0},
		{Job: jobs[2], Speed: 2.0},
	}
	c.SetPlan(entries)
	c.Advance(model(), 0.5, nil)
	processed := 0.0
	for _, j := range jobs {
		processed += j.Processed
	}
	busy := c.BusyProfile()
	workFromProfile := busy.Mean() * busy.Duration() * power.UnitsPerGHz
	if math.Abs(processed-workFromProfile) > 1e-6 {
		t.Fatalf("work conservation broken: processed=%v profile=%v", processed, workFromProfile)
	}
	if c.Energy() <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestAdvanceZeroWidthWindow(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.5, 100), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	c.Advance(model(), 0, nil) // no time passes
	if j.Processed != 0 || c.Now() != 0 {
		t.Fatalf("zero-width advance did work: %v", j.Processed)
	}
}

func TestReasonString(t *testing.T) {
	if ReasonCompleted.String() != "completed" || ReasonExpired.String() != "expired" {
		t.Fatal("reason strings wrong")
	}
}

func BenchmarkCoreAdvance(b *testing.B) {
	m := model()
	for i := 0; i < b.N; i++ {
		c := NewCore(0)
		entries := make([]Entry, 16)
		for k := range entries {
			j := bind(job.New(k, 0, 0.15+float64(k)*0.01, 200), 0)
			entries[k] = Entry{Job: j, Speed: 2}
		}
		c.SetPlan(entries)
		c.Advance(m, 1.0, nil)
	}
}

func TestDropExpired(t *testing.T) {
	c := NewCore(0)
	j1 := bind(job.New(1, 0, 0.1, 100), 0)
	j2 := bind(job.New(2, 0, 0.5, 100), 0)
	j3 := bind(job.New(3, 0, 0.2, 100), 0)
	c.SetPlan([]Entry{{Job: j1, Speed: 1}, {Job: j3, Speed: 1}, {Job: j2, Speed: 1}})
	var dropped []int
	n := c.DropExpired(0.3, func(j *job.Job, r Reason) {
		if r != ReasonExpired {
			t.Fatalf("drop reason = %v", r)
		}
		dropped = append(dropped, j.ID)
	})
	if n != 2 || len(dropped) != 2 {
		t.Fatalf("dropped %d jobs (%v), want 2", n, dropped)
	}
	if c.QueueLen() != 1 || c.Queue()[0].ID != 2 {
		t.Fatalf("queue after drop = %v", c.Queue())
	}
	if c.Expired() != 2 {
		t.Fatalf("expired counter = %d", c.Expired())
	}
	if j1.State != job.StateFinalized || j3.State != job.StateFinalized {
		t.Fatal("dropped jobs not finalized")
	}
}

func TestDropExpiredKeepsDoneJobs(t *testing.T) {
	// A job that reached its cut target before its (passed) deadline is a
	// completion, not an expiry: DropExpired must leave it for Advance to
	// finalize as completed.
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.1, 100), 0)
	j.SetTarget(50)
	j.Advance(50)
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	if n := c.DropExpired(0.3, nil); n != 0 {
		t.Fatalf("done job dropped as expired")
	}
	var reason Reason
	c.Advance(power.Default(), 0.4, func(_ *job.Job, r Reason) { reason = r })
	if reason != ReasonCompleted {
		t.Fatalf("done job finalized as %v", reason)
	}
}

func TestDropExpiredNilCallback(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.1, 100), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 1}})
	if n := c.DropExpired(1.0, nil); n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
}

func TestCurrentSpeed(t *testing.T) {
	c := NewCore(0)
	if c.CurrentSpeed() != 0 {
		t.Fatal("idle core should report speed 0")
	}
	j := bind(job.New(1, 0, 0.5, 100), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 1.7}})
	if c.CurrentSpeed() != 1.7 {
		t.Fatalf("current speed = %v", c.CurrentSpeed())
	}
	c.Advance(model(), 0.5, nil)
	if c.CurrentSpeed() != 0 {
		t.Fatal("drained core should report speed 0")
	}
}

func TestProjectedIdleZeroSpeedEntry(t *testing.T) {
	// Zero-speed entries idle until their deadline.
	c := NewCore(0)
	j := bind(job.New(1, 0, 0.4, 100), 0)
	c.SetPlan([]Entry{{Job: j, Speed: 0}})
	if got := c.ProjectedIdle(0.1); got != 0.4 {
		t.Fatalf("projected idle = %v, want the doomed job's deadline", got)
	}
}

func TestProjectedIdleSkipsDoneAndExpired(t *testing.T) {
	c := NewCore(0)
	done := bind(job.New(1, 0, 0.5, 100), 0)
	done.Advance(100)
	late := bind(job.New(2, 0, 0.05, 100), 0)
	live := bind(job.New(3, 0, 0.6, 100), 0)
	c.SetPlan([]Entry{{Job: done, Speed: 1}, {Job: late, Speed: 1}, {Job: live, Speed: 1}})
	// At t=0.1 the done job takes no time, the late job drops instantly,
	// the live one needs 0.1 s.
	if got := c.ProjectedIdle(0.1); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("projected idle = %v, want 0.2", got)
	}
}

func TestHeterogeneousServer(t *testing.T) {
	models := []power.Model{
		{A: 5, Beta: 2},
		{A: 2, Beta: 2, MaxSpeed: 1.6},
	}
	s, err := NewHeterogeneousServer(models)
	if err != nil {
		t.Fatal(err)
	}
	if s.M() != 2 {
		t.Fatalf("M = %d", s.M())
	}
	if s.ModelFor(1).A != 2 {
		t.Fatalf("core 1 model = %+v", s.ModelFor(1))
	}
	// Same speed, different clusters → different energy.
	j0 := bind(job.New(1, 0, 1, 1000), 0)
	j1 := bind(job.New(2, 0, 1, 1000), 1)
	s.Cores[0].SetPlan([]Entry{{Job: j0, Speed: 1}})
	s.Cores[1].SetPlan([]Entry{{Job: j1, Speed: 1}})
	s.Advance(1, nil)
	e0, e1 := s.Cores[0].Energy(), s.Cores[1].Energy()
	if math.Abs(e0-5) > 1e-9 || math.Abs(e1-2) > 1e-9 {
		t.Fatalf("cluster energies = %v, %v; want 5 and 2 J", e0, e1)
	}
}

func TestHeterogeneousServerValidation(t *testing.T) {
	if _, err := NewHeterogeneousServer(nil); err == nil {
		t.Error("empty model list accepted")
	}
	if _, err := NewHeterogeneousServer([]power.Model{{A: -1, Beta: 2}}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestCoreFailOrphansQueueAndTracksDowntime(t *testing.T) {
	c := NewCore(0)
	j1 := bind(job.New(1, 0, 1, 100), 0)
	j2 := bind(job.New(2, 0, 1, 100), 0)
	if err := c.SetPlan([]Entry{{Job: j1, Speed: 1}, {Job: j2, Speed: 1}}); err != nil {
		t.Fatal(err)
	}
	orphans := c.Fail(0.5)
	if len(orphans) != 2 || orphans[0].Job != j1 || orphans[1].Job != j2 {
		t.Fatalf("orphans = %v", orphans)
	}
	if c.Healthy() || !c.Idle() {
		t.Fatal("failed core should be unhealthy and idle")
	}
	if c.Failures() != 1 {
		t.Fatalf("failures = %d", c.Failures())
	}
	// Double-fail is a no-op.
	if again := c.Fail(0.6); again != nil {
		t.Fatalf("second Fail returned %v", again)
	}
	if c.Failures() != 1 {
		t.Fatalf("failures after double-fail = %d", c.Failures())
	}
	// A dead core accepts a plan (the verify layer flags the policy bug)
	// but executes none of it.
	if err := c.SetPlan([]Entry{{Job: j1, Speed: 1}}); err != nil {
		t.Fatalf("SetPlan on failed core: %v", err)
	}
	c.Advance(model(), 10, func(*job.Job, Reason) { t.Fatal("dead core finalized a job") })
	if j1.Processed != 0 {
		t.Fatalf("dead core processed %v units", j1.Processed)
	}
	c.SetPlan(nil)
	if got := c.DownTime(1.5); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("open-interval downtime = %v, want 1", got)
	}
	c.Recover(2.0)
	if !c.Healthy() {
		t.Fatal("recovered core not healthy")
	}
	if got := c.DownTime(5); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("closed downtime = %v, want 1.5", got)
	}
}

func TestFailedCoreExecutesNothing(t *testing.T) {
	s, _ := NewServer(1, model())
	c := s.Cores[0]
	c.Fail(0)
	if err := s.Advance(1, nil); err != nil {
		t.Fatal(err)
	}
	if c.Energy() != 0 {
		t.Fatalf("dead core consumed %v J", c.Energy())
	}
	prof := c.TotalProfile()
	if got := prof.Mean(); got != 0 {
		t.Fatalf("dead core mean speed = %v", got)
	}
}

func TestStuckCoreOverridesPlanSpeeds(t *testing.T) {
	c := NewCore(0)
	j := bind(job.New(1, 0, 10, 1000), 0)
	c.SetStuck(2)
	if c.StuckSpeed() != 2 {
		t.Fatalf("stuck speed = %v", c.StuckSpeed())
	}
	if err := c.SetPlan([]Entry{{Job: j, Speed: 1}}); err != nil {
		t.Fatal(err)
	}
	if got := c.CurrentSpeed(); got != 2 {
		t.Fatalf("stuck core speed = %v, want wedged 2", got)
	}
	c.SetStuck(0) // free again: existing entries keep their wedged speed
	if c.StuckSpeed() != 0 {
		t.Fatal("stuck speed not cleared")
	}
}

func TestServerBudgetAndSurvivingCapacity(t *testing.T) {
	s, _ := NewServer(4, model())
	s.SetBudget(40)
	if s.Budget() != 40 {
		t.Fatalf("budget = %v", s.Budget())
	}
	if got := s.SurvivingCapacity(); got != 1 {
		t.Fatalf("capacity before time passes = %v, want 1", got)
	}
	if err := s.Advance(1, nil); err != nil { // 4 healthy core-seconds
		t.Fatal(err)
	}
	s.Cores[1].Fail(1)
	s.Cores[2].Fail(1)
	if got := s.Healthy(); got != 2 {
		t.Fatalf("healthy = %d", got)
	}
	if err := s.Advance(2, nil); err != nil { // + 2 healthy core-seconds
		t.Fatal(err)
	}
	// (4 + 2) alive core-seconds over 2 s * 4 cores = 0.75.
	if got := s.SurvivingCapacity(); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("surviving capacity = %v, want 0.75", got)
	}
	if got := s.Failures(); got != 2 {
		t.Fatalf("server failures = %d", got)
	}
}
