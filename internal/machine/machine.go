// Package machine models the multicore server: m cores with per-core DVFS,
// executing per-core EDF plans, with exact energy and speed accounting.
//
// A core holds an ordered execution plan of (job, speed) entries. Advancing
// the machine from one event time to the next runs each core through its
// plan: the head job executes at its assigned speed until it reaches its
// target, hits its deadline (the unfinished tail is dropped — that is the
// quality loss), or the advance window ends. Dynamic energy P(s)·dt and
// time-weighted speed statistics accumulate as execution proceeds.
//
// Jobs never migrate between cores (paper §II-B); the scheduler may only
// re-order or re-speed a core's own queue. The one audited exception is
// fault injection: Core.Fail orphans the planned queue so the scheduler can
// requeue those jobs elsewhere (see internal/faults and internal/sched).
// Cores also carry health state (failed, stuck DVFS) and the Server carries
// a mutable power cap so facility-level capping can shrink it mid-run.
package machine

import (
	"fmt"

	"goodenough/internal/job"
	"goodenough/internal/obs"
	"goodenough/internal/power"
	"goodenough/internal/stats"
)

// Reason says why a job left a core.
type Reason int

const (
	// ReasonCompleted means the job reached its (possibly cut) target.
	ReasonCompleted Reason = iota
	// ReasonExpired means the deadline passed with work outstanding.
	ReasonExpired
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	if r == ReasonCompleted {
		return "completed"
	}
	return "expired"
}

// Entry pairs a job with its planned execution speed in GHz.
type Entry struct {
	Job   *job.Job
	Speed float64
}

// FinalizeFunc observes a job leaving the machine.
type FinalizeFunc func(j *job.Job, r Reason)

// Core is a single DVFS-capable core.
type Core struct {
	// Index is the core's position in the server.
	Index int

	entries []Entry
	now     float64

	energy  float64
	busy    stats.TimeWeighted // speed profile over busy time only
	total   stats.TimeWeighted // speed profile including idle time
	done    int64
	expired int64

	// Fault-injection state: a failed core executes nothing; a stuck core
	// executes every plan entry at the wedged speed.
	failed   bool
	failedAt float64
	downTime float64
	failures int64
	stuck    float64 // 0 = DVFS free

	// Observability: obs receives exec segments and DVFS speed changes;
	// lastSpeed deduplicates speed events. Nil obs costs one branch.
	obs       obs.Observer
	lastSpeed float64
}

// SetObserver attaches an observability sink to the core. With an observer
// attached, Advance emits one obs.EventExec per contiguous (job, speed)
// execution segment and one obs.EventCoreSpeed whenever the executing speed
// changes (0 = idle).
func (c *Core) SetObserver(o obs.Observer) { c.obs = o }

// noteSpeed emits a DVFS-transition event when the executing speed changes.
func (c *Core) noteSpeed(t, s float64) {
	if c.obs == nil || s == c.lastSpeed {
		return
	}
	c.lastSpeed = s
	c.obs.Observe(obs.Event{Time: t, Type: obs.EventCoreSpeed, Core: c.Index, Job: -1, Value: s})
}

// NewCore returns an idle core starting its clock at 0.
func NewCore(index int) *Core { return &Core{Index: index} }

// Now returns the core's local clock (kept in lockstep by the server).
func (c *Core) Now() float64 { return c.now }

// Energy returns the dynamic energy consumed so far, in joules.
func (c *Core) Energy() float64 { return c.energy }

// BusyProfile returns the time-weighted speed statistics over busy time.
func (c *Core) BusyProfile() stats.TimeWeighted { return c.busy }

// TotalProfile returns the speed statistics including idle periods
// (idle = speed 0).
func (c *Core) TotalProfile() stats.TimeWeighted { return c.total }

// Completed and Expired report lifetime counters.
func (c *Core) Completed() int64 { return c.done }

// Expired reports how many jobs this core dropped at their deadlines.
func (c *Core) Expired() int64 { return c.expired }

// Queue returns the jobs currently planned on this core, in plan order.
// The slice is a copy; the jobs are shared.
func (c *Core) Queue() []*job.Job {
	out := make([]*job.Job, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.Job
	}
	return out
}

// AppendQueue appends the planned jobs to dst in plan order and returns the
// extended slice — the allocation-free form of Queue for hot callers that
// own a reusable buffer.
func (c *Core) AppendQueue(dst []*job.Job) []*job.Job {
	for _, e := range c.entries {
		dst = append(dst, e.Job)
	}
	return dst
}

// QueueLen returns the number of planned jobs.
func (c *Core) QueueLen() int { return len(c.entries) }

// Idle reports whether the core has nothing to run.
func (c *Core) Idle() bool { return len(c.entries) == 0 }

// Settled reports whether advancing this core's clock would be a pure
// no-op apart from moving `now`: nothing is planned, and no deferred
// speed-0 event is pending (a core that drained exactly at its last
// Advance boundary still owes the event stream a speed transition, which
// must fire at the original time to keep logs byte-identical). Failed
// cores are settled: their Advance only accumulates zero-speed time.
func (c *Core) Settled() bool {
	if len(c.entries) > 0 {
		return false
	}
	return c.obs == nil || c.lastSpeed == 0
}

// Load returns the total remaining target work queued on the core.
func (c *Core) Load() float64 {
	sum := 0.0
	for _, e := range c.entries {
		sum += e.Job.Remaining()
	}
	return sum
}

// SetPlan replaces the core's execution plan. Every entry's job must
// already be bound to this core; the entries execute in the given order
// (the scheduler provides EDF order). A failed core accepts a plan but
// executes nothing — planning work there is a policy bug that the verify
// layer flags as a "dead-core" violation. On a stuck core, every entry's
// speed is overridden by the wedged DVFS speed — the hardware, not the
// scheduler, picks the frequency there.
func (c *Core) SetPlan(entries []Entry) error {
	for _, e := range entries {
		if e.Job.Core != c.Index {
			return fmt.Errorf("machine: job %d bound to core %d, planned on core %d",
				e.Job.ID, e.Job.Core, c.Index)
		}
		if e.Speed < 0 {
			return fmt.Errorf("machine: negative speed %v for job %d", e.Speed, e.Job.ID)
		}
	}
	c.entries = append(c.entries[:0], entries...)
	if c.stuck > 0 {
		for i := range c.entries {
			c.entries[i].Speed = c.stuck
		}
	}
	return nil
}

// Fail halts the core at time now: the planned queue is orphaned and
// returned to the caller (the scheduler decides whether to requeue or drop
// those jobs), and the core executes nothing until Recover. Failing a
// failed core is a no-op returning nil.
func (c *Core) Fail(now float64) []Entry {
	if c.failed {
		return nil
	}
	c.failed = true
	c.failedAt = now
	c.failures++
	orphans := append([]Entry(nil), c.entries...)
	c.entries = c.entries[:0]
	c.noteSpeed(now, 0) // execution halts instantly
	return orphans
}

// Recover returns a failed core to service (empty and healthy) at time now.
func (c *Core) Recover(now float64) {
	if !c.failed {
		return
	}
	c.downTime += now - c.failedAt
	c.failed = false
}

// Healthy reports whether the core is in service.
func (c *Core) Healthy() bool { return !c.failed }

// Failures counts how many times this core has failed.
func (c *Core) Failures() int64 { return c.failures }

// DownTime returns the total time the core has spent failed, up to now.
func (c *Core) DownTime(now float64) float64 {
	if c.failed {
		return c.downTime + now - c.failedAt
	}
	return c.downTime
}

// SetStuck wedges the core's DVFS at speed GHz (speed <= 0 frees it). The
// current plan is re-speeded immediately.
func (c *Core) SetStuck(speed float64) {
	if speed <= 0 {
		c.stuck = 0
		return
	}
	c.stuck = speed
	for i := range c.entries {
		c.entries[i].Speed = speed
	}
}

// StuckSpeed returns the wedged DVFS speed, or 0 when the governor is free.
func (c *Core) StuckSpeed() float64 { return c.stuck }

// Advance executes the core's plan from its current clock to `to`,
// finalizing jobs as they complete or expire. Energy and speed statistics
// accumulate. The model supplies the power curve.
func (c *Core) Advance(m power.Model, to float64, finalize FinalizeFunc) {
	if c.failed {
		// A failed core executes nothing and draws nothing. The dead span
		// still enters the total profile at speed 0 so time conservation
		// holds across the speed statistics.
		if to > c.now {
			c.noteSpeed(c.now, 0)
			c.total.Add(0, to-c.now)
			c.now = to
		}
		return
	}
	t := c.now
	for t < to {
		// Finalize any leading jobs that are done or hopeless.
		for len(c.entries) > 0 {
			head := c.entries[0]
			switch {
			case head.Job.Done():
				c.finalizeHead(t, finalize, ReasonCompleted)
			case head.Job.Expired(t):
				c.finalizeHead(t, finalize, ReasonExpired)
			case head.Speed <= 0:
				// No speed assigned but work remains: the job cannot
				// progress; it will expire. Skip it at its deadline; for
				// now treat the core as idle until then.
				goto run
			default:
				goto run
			}
		}
	run:
		if len(c.entries) == 0 {
			// Idle to the end of the window.
			if to > t {
				c.noteSpeed(t, 0)
			}
			c.total.Add(0, to-t)
			t = to
			break
		}
		head := c.entries[0]
		if head.Speed <= 0 {
			// Idle until the doomed job's deadline (or window end).
			idleUntil := head.Job.Deadline
			if idleUntil > to {
				idleUntil = to
			}
			if idleUntil > t {
				c.noteSpeed(t, 0)
				c.total.Add(0, idleUntil-t)
				t = idleUntil
			}
			if head.Job.Expired(t) {
				c.finalizeHead(t, finalize, ReasonExpired)
			}
			continue
		}
		rate := power.Rate(head.Speed)
		dt := to - t
		if finishIn := head.Job.Remaining() / rate; finishIn < dt {
			dt = finishIn
		}
		if deadlineIn := head.Job.Deadline - t; deadlineIn < dt {
			dt = deadlineIn
		}
		if dt < 0 {
			dt = 0
		}
		if c.obs != nil && dt > 0 {
			c.noteSpeed(t, head.Speed)
			c.obs.Observe(obs.Event{
				Time: t, Type: obs.EventExec, Core: c.Index, Job: head.Job.ID,
				Value: head.Speed, Aux: dt, Extra: m.Energy(head.Speed, dt),
			})
		}
		head.Job.Advance(rate * dt)
		c.energy += m.Energy(head.Speed, dt)
		c.busy.Add(head.Speed, dt)
		c.total.Add(head.Speed, dt)
		t += dt
		if head.Job.Done() {
			c.finalizeHead(t, finalize, ReasonCompleted)
		} else if head.Job.Expired(t) {
			c.finalizeHead(t, finalize, ReasonExpired)
		} else if dt == 0 {
			// Neither finished nor expired and no time passed: the window
			// is exhausted exactly at t == to.
			break
		}
	}
	c.now = to
}

func (c *Core) finalizeHead(at float64, finalize FinalizeFunc, r Reason) {
	head := c.entries[0]
	// Pop by copying down: re-slicing from the front would strand capacity
	// and force the next SetPlan to reallocate.
	copy(c.entries, c.entries[1:])
	c.entries = c.entries[:len(c.entries)-1]
	head.Job.State = job.StateFinalized
	head.Job.Finish = at
	if r == ReasonCompleted {
		c.done++
	} else {
		c.expired++
	}
	if finalize != nil {
		finalize(head.Job, r)
	}
}

// ProjectedIdle returns the time at which the core's current plan drains,
// assuming no further scheduling events: each entry runs at its speed until
// target or deadline. Returns `now` for an empty plan.
func (c *Core) ProjectedIdle(now float64) float64 {
	t := now
	for _, e := range c.entries {
		if e.Job.Done() {
			continue
		}
		if e.Job.Deadline <= t {
			continue // will be dropped instantly
		}
		if e.Speed <= 0 {
			t = e.Job.Deadline // idles until the drop
			continue
		}
		finish := t + e.Job.Remaining()/power.Rate(e.Speed)
		if finish > e.Job.Deadline {
			finish = e.Job.Deadline
		}
		t = finish
	}
	return t
}

// CurrentSpeed returns the speed the core is executing at right now: the
// head entry's planned speed, or 0 when idle.
func (c *Core) CurrentSpeed() float64 {
	if len(c.entries) == 0 {
		return 0
	}
	return c.entries[0].Speed
}

// DropExpired finalizes every planned job whose deadline has passed at
// time now (not just the head). The scheduler calls this before replanning
// so stale jobs do not distort load and power-demand calculations.
func (c *Core) DropExpired(now float64, finalize FinalizeFunc) int {
	kept := c.entries[:0]
	dropped := 0
	for _, e := range c.entries {
		if e.Job.Expired(now) && !e.Job.Done() {
			e.Job.State = job.StateFinalized
			e.Job.Finish = e.Job.Deadline
			c.expired++
			dropped++
			if finalize != nil {
				finalize(e.Job, ReasonExpired)
			}
			continue
		}
		kept = append(kept, e)
	}
	c.entries = kept
	return dropped
}

// EarliestDeadline returns the soonest deadline among planned jobs, or
// +Inf-like zero-value behavior via ok=false when the plan is empty.
func (c *Core) EarliestDeadline() (float64, bool) {
	if len(c.entries) == 0 {
		return 0, false
	}
	min := c.entries[0].Job.Deadline
	for _, e := range c.entries[1:] {
		if e.Job.Deadline < min {
			min = e.Job.Deadline
		}
	}
	return min, true
}

// Server is the m-core machine. Cores may be heterogeneous: each has its
// own power model (big.LITTLE-style platforms, the paper's "different
// hardware platforms" future work). Model is the first core's model, kept
// for homogeneous callers.
type Server struct {
	Model  power.Model
	Models []power.Model // one per core
	Cores  []*Core
	now    float64

	// budget is the machine's current total power cap in watts. It is
	// mutable so facility-level power capping can shrink it mid-run; 0
	// means "not set" (callers fall back to their configured budget).
	budget float64
}

// NewServer builds a server with m identical cores under the given power
// model.
func NewServer(m int, model power.Model) (*Server, error) {
	if m <= 0 {
		return nil, fmt.Errorf("machine: need at least one core, got %d", m)
	}
	models := make([]power.Model, m)
	for i := range models {
		models[i] = model
	}
	return NewHeterogeneousServer(models)
}

// NewHeterogeneousServer builds a server with one core per model.
func NewHeterogeneousServer(models []power.Model) (*Server, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("machine: need at least one core")
	}
	for i, m := range models {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("machine: core %d: %w", i, err)
		}
	}
	s := &Server{
		Model:  models[0],
		Models: append([]power.Model(nil), models...),
		Cores:  make([]*Core, len(models)),
	}
	for i := range s.Cores {
		s.Cores[i] = NewCore(i)
	}
	return s, nil
}

// ModelFor returns the power model of core i.
func (s *Server) ModelFor(i int) power.Model { return s.Models[i] }

// SetObserver attaches an observability sink to every core (see
// Core.SetObserver). Pass nil to detach.
func (s *Server) SetObserver(o obs.Observer) {
	for _, c := range s.Cores {
		c.SetObserver(o)
	}
}

// Now returns the machine clock.
func (s *Server) Now() float64 { return s.now }

// M returns the core count.
func (s *Server) M() int { return len(s.Cores) }

// Advance runs every core forward to time `to`. A backwards advance is a
// corrupted event stream; it is reported as an error so the run degrades
// into a diagnosable failure instead of crashing the process.
func (s *Server) Advance(to float64, finalize FinalizeFunc) error {
	if to < s.now {
		return fmt.Errorf("machine: advance backwards %v -> %v", s.now, to)
	}
	for i, c := range s.Cores {
		c.Advance(s.Models[i], to, finalize)
	}
	s.now = to
	return nil
}

// Quiescent reports whether every core is Settled: advancing the machine
// clock would execute no work, finalize nothing, emit no events, and add
// no energy. Callers may then skip the Advance and instead perform a
// single catch-up Advance later, before any new work lands — the dead
// span accumulates identically either way.
func (s *Server) Quiescent() bool {
	for _, c := range s.Cores {
		if !c.Settled() {
			return false
		}
	}
	return true
}

// SetBudget sets the machine's current total power cap in watts.
func (s *Server) SetBudget(w float64) { s.budget = w }

// Budget returns the current total power cap (0 when never set).
func (s *Server) Budget() float64 { return s.budget }

// Healthy counts the cores currently in service.
func (s *Server) Healthy() int {
	n := 0
	for _, c := range s.Cores {
		if c.Healthy() {
			n++
		}
	}
	return n
}

// Failures sums the per-core failure counters.
func (s *Server) Failures() int64 {
	var n int64
	for _, c := range s.Cores {
		n += c.Failures()
	}
	return n
}

// SurvivingCapacity returns the time-weighted fraction of core-time that
// was healthy over [0, now]: exactly 1.0 on a fault-free run, (m−k)/m
// while k cores are down. It is derived from the cores' accumulated
// downtime, so fault-free runs carry no floating-point drift. Before any
// time has passed it reports 1.
func (s *Server) SurvivingCapacity() float64 {
	if s.now <= 0 || len(s.Cores) == 0 {
		return 1
	}
	down := 0.0
	for _, c := range s.Cores {
		down += c.DownTime(s.now)
	}
	return 1 - down/(s.now*float64(len(s.Cores)))
}

// Energy returns the total dynamic energy consumed by all cores (joules).
func (s *Server) Energy() float64 {
	sum := 0.0
	for _, c := range s.Cores {
		sum += c.Energy()
	}
	return sum
}

// Loads returns each core's remaining target work in processing units.
func (s *Server) Loads() []float64 {
	loads := make([]float64, len(s.Cores))
	for i, c := range s.Cores {
		loads[i] = c.Load()
	}
	return loads
}

// AppendLoads appends each core's remaining work to dst and returns the
// extended slice — the allocation-free form of Loads.
func (s *Server) AppendLoads(dst []float64) []float64 {
	for _, c := range s.Cores {
		dst = append(dst, c.Load())
	}
	return dst
}

// TotalLoad sums the per-core remaining work.
func (s *Server) TotalLoad() float64 {
	sum := 0.0
	for _, c := range s.Cores {
		sum += c.Load()
	}
	return sum
}

// BusySpeedProfile merges the per-core busy-speed statistics.
func (s *Server) BusySpeedProfile() stats.TimeWeighted {
	var w stats.TimeWeighted
	for _, c := range s.Cores {
		w.Merge(c.BusyProfile())
	}
	return w
}

// TotalSpeedProfile merges the per-core total (incl. idle) statistics.
func (s *Server) TotalSpeedProfile() stats.TimeWeighted {
	var w stats.TimeWeighted
	for _, c := range s.Cores {
		w.Merge(c.TotalProfile())
	}
	return w
}

// Completed and Expired sum the per-core counters.
func (s *Server) Completed() int64 {
	var n int64
	for _, c := range s.Cores {
		n += c.Completed()
	}
	return n
}

// Expired sums the per-core expired counters.
func (s *Server) Expired() int64 {
	var n int64
	for _, c := range s.Cores {
		n += c.Expired()
	}
	return n
}
