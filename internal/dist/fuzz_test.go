package dist

import (
	"math"
	"testing"

	"goodenough/internal/power"
)

// FuzzWaterFill checks conservation and cap-respect for arbitrary demand
// vectors and budgets.
func FuzzWaterFill(f *testing.F) {
	f.Add(uint16(320), []byte{10, 40, 40})
	f.Add(uint16(0), []byte{5})
	f.Add(uint16(1000), []byte{})
	f.Add(uint16(12), []byte{10, 40, 40, 0, 0})
	f.Fuzz(func(t *testing.T, hRaw uint16, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		h := float64(hRaw) / 2
		demands := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			demands[i] = float64(b)
			total += demands[i]
		}
		alloc := WaterFill(h, demands)
		if len(alloc) != len(demands) {
			t.Fatalf("allocation length %d != %d", len(alloc), len(demands))
		}
		sum := 0.0
		for i, a := range alloc {
			if math.IsNaN(a) {
				t.Fatal("NaN allocation")
			}
			if a < -1e-9 {
				t.Fatalf("negative allocation %v", a)
			}
			if a > demands[i]+1e-9 {
				t.Fatalf("allocation %v exceeds demand %v", a, demands[i])
			}
			sum += a
		}
		if sum > h+1e-6 {
			t.Fatalf("allocated %v of budget %v", sum, h)
		}
		if h > 0 && total >= h && len(demands) > 0 && math.Abs(sum-h) > 1e-6 {
			t.Fatalf("scarce budget not exhausted: %v of %v", sum, h)
		}
		if h > 0 && total < h && math.Abs(sum-total) > 1e-6 {
			t.Fatalf("ample budget should satisfy all: %v vs %v", sum, total)
		}
	})
}

// FuzzRectifyDiscrete checks the budget invariant of discrete
// rectification for arbitrary allocations.
func FuzzRectifyDiscrete(f *testing.F) {
	f.Add(uint16(320), []byte{20, 20, 45})
	f.Add(uint16(25), []byte{7, 8})
	f.Fuzz(func(t *testing.T, hRaw uint16, raw []byte) {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		h := float64(hRaw) / 2
		alloc := make([]float64, len(raw))
		for i, b := range raw {
			alloc[i] = float64(b)
		}
		m := powerDefault()
		ladder := defaultLadder()
		speeds, draw := RectifyDiscrete(m, ladder, h, alloc)
		used := 0.0
		for i := range speeds {
			if speeds[i] < 0 {
				t.Fatal("negative rectified speed")
			}
			if speeds[i] > 0 {
				found := false
				for _, s := range ladder.Speeds() {
					if math.Abs(s-speeds[i]) < 1e-12 {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("speed %v not on the ladder", speeds[i])
				}
			}
			used += draw[i]
		}
		if used > h+1e-6 {
			t.Fatalf("rectified draw %v exceeds budget %v", used, h)
		}
	})
}

func powerDefault() power.Model { return power.Default() }

func defaultLadder() *power.Ladder {
	l, err := power.UniformLadder(3.2, 16)
	if err != nil {
		panic(err)
	}
	return l
}
