package dist

import (
	"math"
	"testing"
	"testing/quick"

	"goodenough/internal/power"
	"goodenough/internal/rng"
)

func TestEqualShare(t *testing.T) {
	shares := EqualShare(320, 16)
	if len(shares) != 16 {
		t.Fatalf("len = %d", len(shares))
	}
	for _, s := range shares {
		if math.Abs(s-20) > 1e-12 {
			t.Fatalf("share = %v, want 20", s)
		}
	}
	if EqualShare(320, 0) != nil {
		t.Fatal("zero cores should give nil")
	}
	for _, s := range EqualShare(-5, 4) {
		if s != 0 {
			t.Fatal("negative budget should clamp to zero shares")
		}
	}
}

func TestWaterFillAllSatisfied(t *testing.T) {
	alloc := WaterFill(100, []float64{10, 20, 30})
	want := []float64{10, 20, 30}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestWaterFillLevel(t *testing.T) {
	// Budget 60 over demands {10, 40, 40}: level fills 10 first, then the
	// remaining 50 splits evenly over the two thirsty cores → 25 each.
	alloc := WaterFill(60, []float64{10, 40, 40})
	want := []float64{10, 25, 25}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestWaterFillTightBudget(t *testing.T) {
	// Budget 12 over {10, 40, 40}: step to level 10 needs 30 > 12, so the
	// level is 12/3 = 4 for everyone.
	alloc := WaterFill(12, []float64{10, 40, 40})
	for i, a := range alloc {
		if math.Abs(a-4) > 1e-9 {
			t.Fatalf("alloc[%d] = %v, want 4", i, a)
		}
	}
}

func TestWaterFillPreservesOrderMapping(t *testing.T) {
	// The allocation must map back to the original core indices.
	alloc := WaterFill(60, []float64{40, 10, 40})
	want := []float64{25, 10, 25}
	for i := range want {
		if math.Abs(alloc[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc = %v, want %v", alloc, want)
		}
	}
}

func TestWaterFillEdges(t *testing.T) {
	if len(WaterFill(100, nil)) != 0 {
		t.Fatal("empty demands should give empty allocation")
	}
	for _, a := range WaterFill(0, []float64{5, 5}) {
		if a != 0 {
			t.Fatal("zero budget should allocate nothing")
		}
	}
	// Negative demands clamp to zero.
	alloc := WaterFill(10, []float64{-5, 5})
	if alloc[0] != 0 || math.Abs(alloc[1]-5) > 1e-9 {
		t.Fatalf("negative demand handling wrong: %v", alloc)
	}
}

func TestWaterFillFavorsLowDemands(t *testing.T) {
	// The paper's motivation: low demands are satisfied first.
	alloc := WaterFill(50, []float64{5, 100})
	if math.Abs(alloc[0]-5) > 1e-9 {
		t.Fatalf("low demand not fully satisfied: %v", alloc[0])
	}
	if math.Abs(alloc[1]-45) > 1e-9 {
		t.Fatalf("heavy core should get the rest: %v", alloc[1])
	}
}

func TestProportional(t *testing.T) {
	alloc := Proportional(100, []float64{10, 30})
	if math.Abs(alloc[0]-25) > 1e-9 || math.Abs(alloc[1]-75) > 1e-9 {
		t.Fatalf("proportional = %v", alloc)
	}
	// Zero demand falls back to ES.
	alloc = Proportional(100, []float64{0, 0})
	if math.Abs(alloc[0]-50) > 1e-9 {
		t.Fatalf("zero-demand proportional = %v", alloc)
	}
}

func TestDistributeHybridSwitch(t *testing.T) {
	demands := []float64{10, 40, 40}
	light := Distribute(PolicyHybrid, 60, demands, false)
	for _, a := range light {
		if math.Abs(a-20) > 1e-9 {
			t.Fatalf("hybrid light should equal-share: %v", light)
		}
	}
	heavy := Distribute(PolicyHybrid, 60, demands, true)
	if math.Abs(heavy[0]-10) > 1e-9 || math.Abs(heavy[1]-25) > 1e-9 {
		t.Fatalf("hybrid heavy should water-fill: %v", heavy)
	}
}

func TestDistributeDispatch(t *testing.T) {
	demands := []float64{10, 20}
	if a := Distribute(PolicyES, 30, demands, true); math.Abs(a[0]-15) > 1e-9 {
		t.Fatalf("ES dispatch wrong: %v", a)
	}
	if a := Distribute(PolicyWF, 30, demands, false); math.Abs(a[0]-10) > 1e-9 || math.Abs(a[1]-20) > 1e-9 {
		t.Fatalf("WF dispatch wrong: %v", a)
	}
	if a := Distribute(PolicyProportional, 30, demands, false); math.Abs(a[0]-10) > 1e-9 {
		t.Fatalf("proportional dispatch wrong: %v", a)
	}
}

func TestDistributeUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy did not panic")
		}
	}()
	Distribute(Policy(99), 10, []float64{1}, false)
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		PolicyES: "equal-sharing", PolicyWF: "water-filling",
		PolicyHybrid: "hybrid", PolicyProportional: "proportional",
		Policy(9): "policy(9)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

// Property: water-filling never exceeds the budget, never exceeds any
// core's demand, and fully spends the budget whenever total demand >= H.
func TestWaterFillConservationProperty(t *testing.T) {
	r := rng.New(1)
	prop := func(hRaw uint16, n uint8) bool {
		m := 1 + int(n%16)
		h := float64(hRaw%400) + 1
		demands := make([]float64, m)
		total := 0.0
		for i := range demands {
			demands[i] = r.Float64() * 60
			total += demands[i]
		}
		alloc := WaterFill(h, demands)
		sum := 0.0
		for i, a := range alloc {
			if a < -1e-9 || a > demands[i]+1e-9 {
				return false
			}
			sum += a
		}
		if sum > h+1e-6 {
			return false
		}
		if total >= h && math.Abs(sum-h) > 1e-6 {
			return false // should exhaust the budget
		}
		if total < h && math.Abs(sum-total) > 1e-6 {
			return false // should satisfy everyone exactly
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: the water level is flat — all cores that did not reach their
// demand receive the same allocation.
func TestWaterFillFlatLevelProperty(t *testing.T) {
	r := rng.New(2)
	prop := func(hRaw uint16) bool {
		m := 8
		h := float64(hRaw%300) + 1
		demands := make([]float64, m)
		for i := range demands {
			demands[i] = r.Float64() * 60
		}
		alloc := WaterFill(h, demands)
		level := -1.0
		for i, a := range alloc {
			if a < demands[i]-1e-6 { // unsatisfied
				if level < 0 {
					level = a
				} else if math.Abs(a-level) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRectifyDiscreteRoundsUpWithinBudget(t *testing.T) {
	m := power.Default()
	ladder, _ := power.NewLadder([]float64{1, 2, 3})
	// Continuous allocation implies speeds {1.2, 1.2}: rounding both up to
	// 2 GHz costs 40 W total.
	alloc := []float64{m.Power(1.2), m.Power(1.2)}
	speeds, draw := RectifyDiscrete(m, ladder, 40, alloc)
	for i, s := range speeds {
		if s != 2 {
			t.Fatalf("speed[%d] = %v, want 2 (round up)", i, s)
		}
		if math.Abs(draw[i]-20) > 1e-9 {
			t.Fatalf("draw[%d] = %v, want 20", i, draw[i])
		}
	}
}

func TestRectifyDiscreteFallsBackDown(t *testing.T) {
	m := power.Default()
	ladder, _ := power.NewLadder([]float64{1, 2, 3})
	// Budget 25 W: first core (lowest alloc) rounds 1.2→2 (20 W), second
	// cannot afford 2 GHz (20 W > 5 left) so it drops to 1 GHz (5 W).
	alloc := []float64{m.Power(1.2), m.Power(1.3)}
	speeds, _ := RectifyDiscrete(m, ladder, 25, alloc)
	if speeds[0] != 2 || speeds[1] != 1 {
		t.Fatalf("speeds = %v, want [2 1]", speeds)
	}
}

func TestRectifyDiscreteLowestFirst(t *testing.T) {
	m := power.Default()
	ladder, _ := power.NewLadder([]float64{1, 2, 3})
	// Paper: start from the LOWEST assigned power. Budget 25 W with
	// allocations implying 1.3 (higher) and 1.2 (lower): the 1.2 core is
	// visited first and gets 2 GHz; the 1.3 core falls to 1 GHz.
	alloc := []float64{m.Power(1.3), m.Power(1.2)}
	speeds, _ := RectifyDiscrete(m, ladder, 25, alloc)
	if speeds[1] != 2 || speeds[0] != 1 {
		t.Fatalf("speeds = %v, want [1 2] (lowest alloc first)", speeds)
	}
}

func TestRectifyDiscreteIdleCoreStaysIdle(t *testing.T) {
	m := power.Default()
	ladder, _ := power.NewLadder([]float64{1, 2})
	speeds, draw := RectifyDiscrete(m, ladder, 100, []float64{0, m.Power(1.5)})
	if speeds[0] != 0 || draw[0] != 0 {
		t.Fatalf("idle core got speed %v", speeds[0])
	}
	if speeds[1] != 2 {
		t.Fatalf("active core speed = %v, want 2", speeds[1])
	}
}

func TestRectifyDiscreteNilLadderIsContinuous(t *testing.T) {
	m := power.Default()
	speeds, draw := RectifyDiscrete(m, nil, 100, []float64{20, 45})
	if math.Abs(speeds[0]-2) > 1e-9 || math.Abs(speeds[1]-3) > 1e-9 {
		t.Fatalf("continuous speeds = %v", speeds)
	}
	if math.Abs(draw[0]-20) > 1e-9 || math.Abs(draw[1]-45) > 1e-9 {
		t.Fatalf("continuous draw = %v", draw)
	}
}

// Property: rectified draw never exceeds the budget.
func TestRectifyBudgetProperty(t *testing.T) {
	m := power.Default()
	ladder, _ := power.UniformLadder(3.2, 16)
	r := rng.New(3)
	prop := func(hRaw uint16) bool {
		h := float64(hRaw%400) + 10
		alloc := WaterFill(h, []float64{
			r.Float64() * 50, r.Float64() * 50, r.Float64() * 50, r.Float64() * 50,
		})
		_, draw := RectifyDiscrete(m, ladder, h, alloc)
		return Sum(draw) <= h+1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWaterFill(b *testing.B) {
	r := rng.New(1)
	demands := make([]float64, 16)
	for i := range demands {
		demands[i] = r.Float64() * 60
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		WaterFill(320, demands)
	}
}
