// Package dist implements the power-distribution policies that divide the
// server's total dynamic power budget H among the cores:
//
//   - Equal-Sharing (ES): every core receives H/m. Used under light load to
//     keep core speeds close together, avoiding the core-speed-thrashing
//     energy penalty caused by AES↔BQ mode switching (paper §III-D).
//
//   - Water-Filling (WF): cores declare a power demand (the power needed to
//     finish their workload by its deadlines); WF satisfies the smallest
//     demands first and pours all remaining budget evenly over the cores
//     that still want more (Du et al., IPDPS'13). Used under heavy load to
//     maximize achieved quality.
//
//   - Hybrid: ES below the critical load, WF at or above it — the paper's
//     policy.
//
//   - Proportional: demand-proportional split, included as an ablation.
//
// The package also provides the paper's discrete-speed rectification
// (§IV-A5): after distribution, starting from the core with the LOWEST
// assigned power, round each core's implied speed up to the next discrete
// level if the remaining budget allows, otherwise down.
package dist

import (
	"fmt"
	"slices"

	"goodenough/internal/power"
)

// Filler owns the scratch buffers (sort pairs, allocation vectors) the
// distribution policies need, so a scheduler distributing power every
// trigger allocates nothing in steady state. Returned slices are owned by
// the Filler and valid until its next call — copy them out to keep them.
// A Filler is not goroutine-safe; give each scheduler its own (the zero
// value is ready to use).
type Filler struct {
	pairs  []wfPair
	order  []int
	alloc  []float64
	speeds []float64
	draw   []float64
}

// wfPair is one core's (index, demand) for the water-filling sort.
type wfPair struct {
	idx    int
	demand float64
}

// grow resizes f.alloc to m zeroed entries without reallocating once the
// high-water mark is reached.
func (f *Filler) grow(m int) []float64 {
	if cap(f.alloc) < m {
		f.alloc = make([]float64, m)
	}
	f.alloc = f.alloc[:m]
	for i := range f.alloc {
		f.alloc[i] = 0
	}
	return f.alloc
}

// EqualShare returns each of m cores' share of budget H: H/m each.
func EqualShare(h float64, m int) []float64 {
	var f Filler
	return f.EqualShare(h, m)
}

// EqualShare is EqualShare on the Filler's reused buffer.
func (f *Filler) EqualShare(h float64, m int) []float64 {
	if m <= 0 {
		return nil
	}
	if h < 0 {
		h = 0
	}
	shares := f.grow(m)
	per := h / float64(m)
	for i := range shares {
		shares[i] = per
	}
	return shares
}

// WaterFill distributes budget H over cores with the given power demands
// (watts). Demands are satisfied lowest-first; once every demand at or
// below the water level is fully met, the remaining budget raises the
// level evenly across the still-thirsty cores. No core receives more than
// its demand; leftover budget (if all demands are met) remains unassigned,
// matching the physical model where a core has no use for power beyond
// what finishes its work at the required speed.
func WaterFill(h float64, demands []float64) []float64 {
	var f Filler
	return f.WaterFill(h, demands)
}

// WaterFill is WaterFill on the Filler's reused buffers: the (index,
// demand) pairs are sorted in scratch instead of a per-call allocation.
// The arithmetic — level walk, split of the residual budget — is identical
// to the stand-alone form, bit for bit.
func (f *Filler) WaterFill(h float64, demands []float64) []float64 {
	m := len(demands)
	alloc := f.grow(m)
	if m == 0 || h <= 0 {
		return alloc
	}
	f.pairs = f.pairs[:0]
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		f.pairs = append(f.pairs, wfPair{idx: i, demand: d})
	}
	cores := f.pairs
	// Stable: equal demands keep index order, like the original
	// sort.SliceStable this replaces.
	slices.SortStableFunc(cores, func(a, b wfPair) int {
		switch {
		case a.demand < b.demand:
			return -1
		case a.demand > b.demand:
			return 1
		default:
			return 0
		}
	})

	remaining := h
	for i := 0; i < m; i++ {
		// Try to raise the level to cores[i].demand for cores i..m-1.
		prev := 0.0
		if i > 0 {
			prev = cores[i-1].demand
		}
		step := cores[i].demand - prev
		need := step * float64(m-i)
		if need <= remaining {
			remaining -= need
			continue
		}
		// Budget exhausts within this step: split the rest evenly over the
		// m-i unsatisfied cores on top of the previous level.
		level := prev + remaining/float64(m-i)
		for k := i; k < m; k++ {
			alloc[cores[k].idx] = level
		}
		for k := 0; k < i; k++ {
			alloc[cores[k].idx] = cores[k].demand
		}
		return alloc
	}
	// Every demand satisfied.
	for _, c := range cores {
		alloc[c.idx] = c.demand
	}
	return alloc
}

// Policy selects a distribution scheme by name.
type Policy int

const (
	// PolicyES always equal-shares.
	PolicyES Policy = iota
	// PolicyWF always water-fills.
	PolicyWF
	// PolicyHybrid equal-shares under light load, water-fills otherwise.
	PolicyHybrid
	// PolicyProportional splits proportionally to demand (ablation).
	PolicyProportional
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyES:
		return "equal-sharing"
	case PolicyWF:
		return "water-filling"
	case PolicyHybrid:
		return "hybrid"
	case PolicyProportional:
		return "proportional"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Proportional splits H proportionally to the demands. Zero total demand
// falls back to equal sharing.
func Proportional(h float64, demands []float64) []float64 {
	var f Filler
	return f.Proportional(h, demands)
}

// Proportional is Proportional on the Filler's reused buffer.
func (f *Filler) Proportional(h float64, demands []float64) []float64 {
	m := len(demands)
	alloc := f.grow(m)
	if m == 0 || h <= 0 {
		return alloc
	}
	total := 0.0
	for _, d := range demands {
		if d > 0 {
			total += d
		}
	}
	if total <= 0 {
		return f.EqualShare(h, m)
	}
	for i, d := range demands {
		if d > 0 {
			alloc[i] = h * d / total
		}
	}
	return alloc
}

// Distribute applies the policy. `heavy` tells Hybrid which regime the
// system is in (load >= critical load).
func Distribute(p Policy, h float64, demands []float64, heavy bool) []float64 {
	var f Filler
	return f.Distribute(p, h, demands, heavy)
}

// Distribute is Distribute on the Filler's reused buffers.
func (f *Filler) Distribute(p Policy, h float64, demands []float64, heavy bool) []float64 {
	switch p {
	case PolicyES:
		return f.EqualShare(h, len(demands))
	case PolicyWF:
		return f.WaterFill(h, demands)
	case PolicyProportional:
		return f.Proportional(h, demands)
	case PolicyHybrid:
		if heavy {
			return f.WaterFill(h, demands)
		}
		return f.EqualShare(h, len(demands))
	default:
		panic(fmt.Sprintf("dist: unknown policy %d", int(p)))
	}
}

// RectifyDiscrete converts continuous per-core power allocations into
// discrete speed levels per the paper §IV-A5: visit cores from the lowest
// assigned power upward; for each, choose the smallest ladder speed not
// below the implied continuous speed when the total budget still allows
// it, otherwise the next lower level. Cores with zero allocation stay
// idle. It returns the chosen speeds (GHz) and the implied power draw.
func RectifyDiscrete(model power.Model, ladder *power.Ladder, h float64, alloc []float64) (speeds, draw []float64) {
	var f Filler
	return f.RectifyDiscrete(model, ladder, h, alloc)
}

// RectifyDiscrete is RectifyDiscrete on the Filler's reused buffers: the
// visiting order is sorted in scratch and the speed/draw vectors are
// reused across calls.
func (f *Filler) RectifyDiscrete(model power.Model, ladder *power.Ladder, h float64, alloc []float64) (speeds, draw []float64) {
	m := len(alloc)
	if cap(f.speeds) < m {
		f.speeds = make([]float64, m)
		f.draw = make([]float64, m)
	}
	speeds, draw = f.speeds[:m], f.draw[:m]
	for i := range speeds {
		speeds[i], draw[i] = 0, 0
	}
	if ladder == nil || m == 0 {
		for i, p := range alloc {
			speeds[i] = model.Speed(p)
			draw[i] = model.Power(speeds[i])
		}
		return speeds, draw
	}
	f.order = f.order[:0]
	for i := 0; i < m; i++ {
		f.order = append(f.order, i)
	}
	order := f.order
	// Stable: equal allocations visit in core order, like the original
	// sort.SliceStable this replaces.
	slices.SortStableFunc(order, func(a, b int) int {
		switch {
		case alloc[a] < alloc[b]:
			return -1
		case alloc[a] > alloc[b]:
			return 1
		default:
			return 0
		}
	})

	used := 0.0
	for _, idx := range order {
		p := alloc[idx]
		if p <= 0 {
			continue
		}
		cont := model.Speed(p)
		up, _ := ladder.Up(cont)
		cost := model.Power(up)
		if used+cost <= h+1e-9 {
			speeds[idx] = up
			draw[idx] = cost
			used += cost
			continue
		}
		down, ok := ladder.Down(cont)
		if !ok {
			continue // below the lowest active state: idle
		}
		cost = model.Power(down)
		if used+cost <= h+1e-9 {
			speeds[idx] = down
			draw[idx] = cost
			used += cost
		}
	}
	return speeds, draw
}

// Sum returns the total of an allocation (diagnostics, conservation tests).
func Sum(alloc []float64) float64 {
	s := 0.0
	for _, a := range alloc {
		s += a
	}
	return s
}
