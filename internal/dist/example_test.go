package dist_test

import (
	"fmt"

	"goodenough/internal/dist"
)

// ExampleWaterFill distributes a 60 W budget over three cores demanding
// 10, 40 and 40 W: the light core is satisfied first, and the rest of the
// budget is split evenly over the two heavy cores.
func ExampleWaterFill() {
	alloc := dist.WaterFill(60, []float64{10, 40, 40})
	fmt.Println(alloc)
	// Output:
	// [10 25 25]
}

// ExampleEqualShare is the light-load policy: every core gets the same
// share regardless of demand, keeping speeds (and the convex power bill)
// uniform.
func ExampleEqualShare() {
	fmt.Println(dist.EqualShare(320, 16)[0])
	// Output:
	// 20
}
