package core

import (
	"math"
	"testing"

	"goodenough/internal/dist"
	"goodenough/internal/power"
	"goodenough/internal/quality"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

func shortSpec(rate float64, seed uint64) workload.Spec {
	s := workload.DefaultSpec(rate, seed)
	s.Duration = 30
	return s
}

func run(t *testing.T, cfg sched.Config, p sched.Policy, spec workload.Spec) sched.Result {
	t.Helper()
	r, err := sched.NewRunner(cfg, p, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGEHoldsTargetQuality(t *testing.T) {
	// Pre-overload, GE must sit at ~Q_GE (Fig. 3a).
	for _, rate := range []float64{100, 130, 154} {
		res := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 1))
		if res.Quality < 0.88 {
			t.Fatalf("rate %v: GE quality %v below target band", rate, res.Quality)
		}
		if res.Quality > 0.96 {
			t.Fatalf("rate %v: GE quality %v — cutting is not engaging", rate, res.Quality)
		}
	}
}

func TestGESavesEnergyVersusBE(t *testing.T) {
	// The headline: GE spends materially less energy than BE while meeting
	// Q_GE (paper: up to 23.9%).
	for _, rate := range []float64{100, 130, 154} {
		ge := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 2))
		be := run(t, sched.Defaults(), NewBE(), shortSpec(rate, 2))
		if ge.Energy >= be.Energy {
			t.Fatalf("rate %v: GE energy %v not below BE %v", rate, ge.Energy, be.Energy)
		}
		saving := 1 - ge.Energy/be.Energy
		if saving < 0.05 {
			t.Fatalf("rate %v: GE saving only %.1f%%", rate, saving*100)
		}
		if be.Quality < ge.Quality {
			t.Fatalf("rate %v: BE quality %v below GE %v", rate, be.Quality, ge.Quality)
		}
	}
}

func TestBEQualityNearOne(t *testing.T) {
	res := run(t, sched.Defaults(), NewBE(), shortSpec(100, 3))
	if res.Quality < 0.99 {
		t.Fatalf("BE light-load quality = %v, want ~1", res.Quality)
	}
	// BE never LF-cuts, but Quality-OPT may trim a few jobs in arrival
	// bursts where even Water-Filling cannot power every core fully.
	if frac := float64(res.CutJobs) / float64(res.Jobs); frac > 0.05 {
		t.Fatalf("BE cut %.1f%% of jobs; only rare burst trims are expected", frac*100)
	}
}

func TestAESFractionDeclinesWithLoad(t *testing.T) {
	// Fig. 1: high AES share at light load, near zero past overload.
	light := run(t, sched.Defaults(), NewGE(0.9), shortSpec(100, 4))
	heavy := run(t, sched.Defaults(), NewGE(0.9), shortSpec(220, 4))
	if light.AESFraction < 0.5 {
		t.Fatalf("light-load AES fraction = %v, want > 0.5", light.AESFraction)
	}
	if heavy.AESFraction > 0.3 {
		t.Fatalf("overload AES fraction = %v, want small", heavy.AESFraction)
	}
	if heavy.AESFraction >= light.AESFraction {
		t.Fatal("AES fraction should decline with load")
	}
}

func TestCompensationLiftsQuality(t *testing.T) {
	// Fig. 5: without compensation quality sags under load; with it, GE
	// holds the target at slightly higher energy.
	rate := 175.0
	comp := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 5))
	nocomp := run(t, sched.Defaults(), NewNoComp(0.9), shortSpec(rate, 5))
	if comp.Quality <= nocomp.Quality {
		t.Fatalf("compensation did not lift quality: %v vs %v", comp.Quality, nocomp.Quality)
	}
	if comp.Energy < nocomp.Energy {
		t.Fatalf("compensation should cost energy: %v vs %v", comp.Energy, nocomp.Energy)
	}
}

func TestNoCompNeverSwitches(t *testing.T) {
	res := run(t, sched.Defaults(), NewNoComp(0.9), shortSpec(200, 6))
	if res.ModeSwitches != 0 {
		t.Fatalf("no-comp recorded %d mode switches", res.ModeSwitches)
	}
	if res.AESFraction < 0.99 {
		t.Fatalf("no-comp AES fraction = %v, want ~1", res.AESFraction)
	}
}

func TestESLowerSpeedVarianceThanWFLightLoad(t *testing.T) {
	// Fig. 6b: under light load ES keeps core speeds tight while WF (with
	// compensation switching) thrashes.
	rate := 110.0
	es := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyES), shortSpec(rate, 7))
	wf := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyWF), shortSpec(rate, 7))
	if es.SpeedVariance >= wf.SpeedVariance {
		t.Fatalf("ES variance %v should be below WF %v at light load",
			es.SpeedVariance, wf.SpeedVariance)
	}
}

func TestESSavesEnergyAtLightLoadSameQuality(t *testing.T) {
	// Fig. 7: at light load ES matches WF's quality with less energy.
	rate := 110.0
	es := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyES), shortSpec(rate, 8))
	wf := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyWF), shortSpec(rate, 8))
	if math.Abs(es.Quality-wf.Quality) > 0.03 {
		t.Fatalf("light-load quality gap too large: ES %v WF %v", es.Quality, wf.Quality)
	}
	if es.Energy >= wf.Energy {
		t.Fatalf("ES energy %v should undercut WF %v at light load", es.Energy, wf.Energy)
	}
}

func TestWFBetterQualityAtHeavyLoad(t *testing.T) {
	// Fig. 7a: under heavy (pre-overload-ish) load WF exploits the budget
	// where ES strands power on light cores.
	rate := 185.0
	es := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyES), shortSpec(rate, 9))
	wf := run(t, sched.Defaults(), NewFixedDist(0.9, dist.PolicyWF), shortSpec(rate, 9))
	if wf.Quality < es.Quality-0.005 {
		t.Fatalf("WF quality %v should not trail ES %v at heavy load", wf.Quality, es.Quality)
	}
}

func TestOQOverProvisionsAtLightLoad(t *testing.T) {
	// OQ targets Q_GE+0.02 without compensation: more quality and more
	// energy than GE when the system keeps up.
	rate := 120.0
	ge := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 10))
	oq := run(t, sched.Defaults(), NewOQ(0.9), shortSpec(rate, 10))
	if oq.Quality <= ge.Quality-0.01 {
		t.Fatalf("OQ quality %v should be at or above GE %v pre-overload", oq.Quality, ge.Quality)
	}
	// At light load the two are close in energy (GE's compensation churn
	// roughly offsets OQ's higher target); OQ must not be dramatically
	// cheaper, or its "over-qualified" premise would be violated.
	if oq.Energy < ge.Energy*0.9 {
		t.Fatalf("OQ energy %v far below GE %v", oq.Energy, ge.Energy)
	}
}

func TestGEBeatsOQUnderOverload(t *testing.T) {
	// Fig. 3a: OQ "cannot satisfy the quality demand when the workload is
	// heavy" because it never compensates.
	rate := 185.0
	ge := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 11))
	oq := run(t, sched.Defaults(), NewOQ(0.9), shortSpec(rate, 11))
	if ge.Quality < oq.Quality-0.005 {
		t.Fatalf("GE quality %v should match or beat OQ %v under load", ge.Quality, oq.Quality)
	}
}

func TestBEPReducedBudget(t *testing.T) {
	// BE-P with a lower budget must use no more energy than plain BE.
	rate := 150.0
	be := run(t, sched.Defaults(), NewBE(), shortSpec(rate, 12))
	bep := run(t, sched.Defaults(), NewBEP(200), shortSpec(rate, 12))
	if bep.Energy > be.Energy+1e-6 {
		t.Fatalf("BE-P energy %v exceeds BE %v", bep.Energy, be.Energy)
	}
	if bep.Quality > be.Quality+1e-9 {
		t.Fatalf("BE-P quality %v exceeds BE %v", bep.Quality, be.Quality)
	}
}

func TestBESSpeedCap(t *testing.T) {
	rate := 150.0
	bes := run(t, sched.Defaults(), NewBES(1.5), shortSpec(rate, 13))
	if bes.AvgSpeed > 1.5+1e-6 {
		t.Fatalf("BE-S average speed %v exceeds the 1.5 GHz cap", bes.AvgSpeed)
	}
	be := run(t, sched.Defaults(), NewBE(), shortSpec(rate, 13))
	if bes.Quality > be.Quality+1e-9 {
		t.Fatalf("capped BE-S quality %v above BE %v", bes.Quality, be.Quality)
	}
}

func TestHigherBudgetHelpsUnderLoad(t *testing.T) {
	// Fig. 10: more budget → better quality under heavy load; energy rises
	// with budget until saturation.
	rate := 200.0
	cfg80 := sched.Defaults()
	cfg80.PowerBudget = 80
	cfg480 := sched.Defaults()
	cfg480.PowerBudget = 480
	lo := run(t, cfg80, NewGE(0.9), shortSpec(rate, 14))
	hi := run(t, cfg480, NewGE(0.9), shortSpec(rate, 14))
	if hi.Quality <= lo.Quality {
		t.Fatalf("bigger budget should raise overloaded quality: %v vs %v", hi.Quality, lo.Quality)
	}
	if hi.Energy <= lo.Energy {
		t.Fatalf("bigger budget should spend more energy under overload: %v vs %v",
			hi.Energy, lo.Energy)
	}
}

func TestMoreCoresHelp(t *testing.T) {
	// Fig. 11: with the same budget, more cores raise quality and lower
	// energy (convexity of the power curve).
	rate := 150.0
	cfg2 := sched.Defaults()
	cfg2.Cores = 2
	cfg32 := sched.Defaults()
	cfg32.Cores = 32
	small := run(t, cfg2, NewGE(0.9), shortSpec(rate, 15))
	big := run(t, cfg32, NewGE(0.9), shortSpec(rate, 15))
	if big.Quality <= small.Quality {
		t.Fatalf("more cores should raise quality: %v (32) vs %v (2)", big.Quality, small.Quality)
	}
	if big.Energy >= small.Energy {
		t.Fatalf("more cores should lower energy: %v (32) vs %v (2)", big.Energy, small.Energy)
	}
}

func TestConcavityHelpsQualityUnderLoad(t *testing.T) {
	// Fig. 9a: a more concave quality function (larger c) yields higher
	// measured quality at the same load.
	rate := 200.0
	mkCfg := func(c float64) sched.Config {
		cfg := sched.Defaults()
		cfg.Quality = qualityExp(c)
		return cfg
	}
	low := run(t, mkCfg(0.0005), NewGE(0.9), shortSpec(rate, 16))
	high := run(t, mkCfg(0.009), NewGE(0.9), shortSpec(rate, 16))
	if high.Quality <= low.Quality {
		t.Fatalf("larger c should raise quality: c=0.009 → %v vs c=0.0005 → %v",
			high.Quality, low.Quality)
	}
}

func TestDiscreteSpeedScaling(t *testing.T) {
	// Fig. 12: discrete scaling stays close to continuous on both axes.
	rate := 150.0
	cont := run(t, sched.Defaults(), NewGE(0.9), shortSpec(rate, 17))
	cfgD := sched.Defaults()
	ladder, err := power.UniformLadder(3.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfgD.Ladder = ladder
	disc := run(t, cfgD, NewGE(0.9), shortSpec(rate, 17))
	if math.Abs(disc.Quality-cont.Quality) > 0.05 {
		t.Fatalf("discrete quality %v too far from continuous %v", disc.Quality, cont.Quality)
	}
	if disc.Energy <= 0 {
		t.Fatal("discrete run recorded no energy")
	}
	ratio := disc.Energy / cont.Energy
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("discrete energy ratio %v out of plausible band", ratio)
	}
}

func TestGEDeterminism(t *testing.T) {
	a := run(t, sched.Defaults(), NewGE(0.9), shortSpec(154, 18))
	b := run(t, sched.Defaults(), NewGE(0.9), shortSpec(154, 18))
	if a.Quality != b.Quality || a.Energy != b.Energy || a.AESFraction != b.AESFraction {
		t.Fatalf("GE runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestAllJobsAccountedGE(t *testing.T) {
	res := run(t, sched.Defaults(), NewGE(0.9), shortSpec(200, 19))
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("%d jobs vs %d completed + %d expired", res.Jobs, res.Completed, res.Expired)
	}
}

func TestModeSwitchesHappen(t *testing.T) {
	// Near the knee GE should alternate AES/BQ (the compensation policy in
	// action).
	res := run(t, sched.Defaults(), NewGE(0.9), shortSpec(160, 20))
	if res.ModeSwitches == 0 {
		t.Fatal("GE never exercised the compensation switch near the knee")
	}
}

func TestWindowedMonitor(t *testing.T) {
	// The windowed-monitor extension must run and stay in the quality band.
	p := New("GE-windowed", Options{
		Target: 0.9, Compensation: true, Dist: dist.PolicyHybrid, MonitorWindow: 5,
	})
	res := run(t, sched.Defaults(), p, shortSpec(154, 21))
	if res.Quality < 0.85 {
		t.Fatalf("windowed monitor quality = %v", res.Quality)
	}
}

func TestGEReset(t *testing.T) {
	p := NewGE(0.9)
	spec := shortSpec(150, 22)
	r1, _ := sched.NewRunner(sched.Defaults(), p, spec)
	a, err := r1.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Re-using the same policy object must reproduce the run exactly
	// (Reset clears the C-RR cursor and mode latch).
	r2, _ := sched.NewRunner(sched.Defaults(), p, spec)
	b, err := r2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Quality != b.Quality || a.Energy != b.Energy {
		t.Fatalf("policy reuse diverged: %+v vs %+v", a, b)
	}
}

func TestInAESAccessor(t *testing.T) {
	if !NewGE(0.9).InAES() {
		t.Fatal("GE should start in AES mode")
	}
	if NewBE().InAES() {
		t.Fatal("BE must never be in AES mode")
	}
}

func TestConstructorNames(t *testing.T) {
	cases := map[string]*GE{
		"GE": NewGE(0.9), "OQ": NewOQ(0.9), "BE": NewBE(),
		"GE-NoComp": NewNoComp(0.9), "BE-P": NewBEP(100), "BE-S": NewBES(2),
		"GE-equal-sharing": NewFixedDist(0.9, dist.PolicyES),
		"GE-water-filling": NewFixedDist(0.9, dist.PolicyWF),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name = %q, want %q", p.Name(), want)
		}
	}
}

func TestOQTargetClamped(t *testing.T) {
	oq := NewOQ(0.995)
	if oq.opts.Target > 1 {
		t.Fatalf("OQ target %v exceeds 1", oq.opts.Target)
	}
}

// qualityExp builds the paper's quality function with the given concavity.
func qualityExp(c float64) quality.Function { return quality.NewExponential(c, 1000) }

func TestGlobalCutMatchesTargetToo(t *testing.T) {
	p := New("GE-global", Options{
		Target: 0.9, Compensation: true, Dist: dist.PolicyHybrid, GlobalCut: true,
	})
	res := run(t, sched.Defaults(), p, shortSpec(140, 30))
	if res.Quality < 0.88 || res.Quality > 0.96 {
		t.Fatalf("global-cut quality = %v, want ~0.9", res.Quality)
	}
}

func TestGlobalCutVsPerCore(t *testing.T) {
	// Global cutting sees the whole demand population, so its level is
	// uniform across cores; per-core cutting adapts to each core's batch.
	// Both must hold the target; energies should be within a few percent.
	perCore := run(t, sched.Defaults(), NewGE(0.9), shortSpec(130, 31))
	global := run(t, sched.Defaults(), New("GE-global", Options{
		Target: 0.9, Compensation: true, Dist: dist.PolicyHybrid, GlobalCut: true,
	}), shortSpec(130, 31))
	if global.Quality < 0.88 {
		t.Fatalf("global quality = %v", global.Quality)
	}
	ratio := global.Energy / perCore.Energy
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("global/per-core energy ratio = %v; expected close agreement", ratio)
	}
}

func TestZeroTargetCutsEverything(t *testing.T) {
	// Target 0 cuts every job to its floor: all jobs "complete" with zero
	// work, quality collapses to ~0, and energy is near zero. This also
	// exercises the zero-demand Water-Filling path (cores ask for no
	// power).
	p := New("GE-zero", Options{Target: 0, Dist: dist.PolicyWF})
	res := run(t, sched.Defaults(), p, shortSpec(120, 40))
	if res.Quality > 0.01 {
		t.Fatalf("target-0 quality = %v, want ~0", res.Quality)
	}
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("accounting broken: %+v", res)
	}
	// Energy should be negligible compared to a real run.
	ref := run(t, sched.Defaults(), NewGE(0.9), shortSpec(120, 40))
	if res.Energy > ref.Energy*0.05 {
		t.Fatalf("target-0 energy %v should be tiny vs %v", res.Energy, ref.Energy)
	}
}

func TestVeryLowBudget(t *testing.T) {
	cfg := sched.Defaults()
	cfg.PowerBudget = 1 // one watt for the whole machine
	res := run(t, cfg, NewGE(0.9), shortSpec(100, 41))
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("accounting broken on starved machine: %+v", res)
	}
	if res.Energy > 1*res.SimTime {
		t.Fatalf("energy %v exceeds the 1 W envelope", res.Energy)
	}
}

func TestSingleCoreMachine(t *testing.T) {
	cfg := sched.Defaults()
	cfg.Cores = 1
	cfg.PowerBudget = 20
	res := run(t, cfg, NewGE(0.9), shortSpec(12, 42))
	// One 2 GHz-max core at λ=12 (≈2300 u/s offered vs 2000 capacity) is
	// nearly saturated but must still function.
	if res.Quality <= 0.5 {
		t.Fatalf("single-core quality = %v", res.Quality)
	}
}

func TestGEModeEnergySplit(t *testing.T) {
	// Near the knee GE alternates modes; both buckets must be populated
	// and sum to the total.
	res := run(t, sched.Defaults(), NewGE(0.9), shortSpec(160, 43))
	if res.AESEnergy <= 0 || res.BQEnergy <= 0 {
		t.Fatalf("mode energy split degenerate: AES %v BQ %v", res.AESEnergy, res.BQEnergy)
	}
	if math.Abs(res.AESEnergy+res.BQEnergy-res.Energy) > 1e-6*res.Energy {
		t.Fatalf("split %v + %v != %v", res.AESEnergy, res.BQEnergy, res.Energy)
	}
}
