// Package core implements the paper's contribution: the Good Enough (GE)
// scheduling algorithm for multicore servers (§III), together with its
// configurable family — OQ, BE, the compensation and power-distribution
// ablations, and the BE-P / BE-S control-policy baselines, which are all
// parameterizations of the same pipeline.
//
// The pipeline at every trigger (§III-E):
//
//  1. sweep expired jobs off the cores;
//  2. batch-assign the waiting queue to cores with Cumulative Round-Robin;
//  3. decide the execution mode: AES while the monitored quality is at or
//     above Q_GE, BQ below it (the compensation policy);
//  4. in AES mode, apply Longest-First job cutting per core to the target
//     quality; in BQ mode, restore full targets;
//  5. compute each core's power demand (the YDS peak speed of its cut
//     workload) and distribute the budget — Equal-Sharing under light load,
//     Water-Filling under heavy load (the hybrid policy);
//  6. per core: if the granted power cannot finish the workload, run
//     Quality-OPT as a second cut; then lay out the minimal-energy
//     Energy-OPT (YDS) plan, optionally rectified to discrete speeds.
package core

import (
	"math"

	"goodenough/internal/assign"
	"goodenough/internal/cut"
	"goodenough/internal/dist"
	"goodenough/internal/job"
	"goodenough/internal/machine"
	"goodenough/internal/obs"
	"goodenough/internal/power"
	"goodenough/internal/qopt"
	"goodenough/internal/sched"
	"goodenough/internal/yds"
)

// Options parameterize the GE pipeline. The zero value is not useful; use
// the constructors below or fill Target and Dist explicitly.
type Options struct {
	// Target is the batch quality the LF cutting aims for in AES mode.
	// GE uses the user's Q_GE; OQ uses Q_GE + 0.02.
	Target float64
	// Compensation enables the AES→BQ switch when the monitored quality
	// falls below the user's Q_GE (and back once it recovers).
	Compensation bool
	// AlwaysBQ disables cutting entirely (the Best-Effort baseline).
	AlwaysBQ bool
	// Dist selects the power-distribution policy (hybrid for GE, WF for
	// BE, or fixed ES/WF for the Fig. 6–7 ablations).
	Dist dist.Policy
	// Assigner maps batches onto cores; nil defaults to Cumulative RR.
	Assigner assign.Assigner
	// BudgetOverride, when positive, replaces the configured power budget
	// (the BE-P power-control baseline).
	BudgetOverride float64
	// SpeedCap, when positive, caps every core's speed in GHz (the BE-S
	// speed-control baseline).
	SpeedCap float64
	// GlobalCut applies LF cutting jointly across all cores' jobs instead
	// of per core. The paper describes the cutting algorithm globally
	// (§III-B) but applies it per core in the pipeline (§III-E); per-core
	// is the default, and this option quantifies the difference.
	GlobalCut bool
	// MonitorWindow, when positive, evaluates the compensation trigger
	// over roughly the last MonitorWindow seconds of finalized quality
	// mass instead of the cumulative average (extension knob; the paper's
	// monitor is cumulative).
	MonitorWindow float64
}

// GE is the Good Enough scheduler (and its whole parameterized family).
type GE struct {
	name string
	opts Options

	inAES bool
	// history of (time, achieved, possible) snapshots for the optional
	// windowed monitor.
	hist []monitorSnap
	// lastHeavy/heavySet track the hybrid distribution's regime so the
	// ES↔WF crossings can be emitted as EventDistSwitch.
	lastHeavy bool
	heavySet  bool

	// scratch holds every buffer the pipeline needs per trigger, reused
	// across Schedule calls so the steady-state hot path allocates nothing.
	// Contents are only valid within one call. A GE is not goroutine-safe
	// (it never was — inAES and the assigner are per-instance state), so
	// per-instance scratch is safe: parallel seed runs construct one policy
	// per runner.
	scratch struct {
		eligible []int
		batch    []*job.Job
		loads    []float64
		perCore  [][]*job.Job
		all      []*job.Job
		edf      []*job.Job
		demands  []float64
		peaks    []float64
		free     []int
		compact  []float64
		alloc    []float64
		chosen   []float64
		entries  []machine.Entry
		plan     []yds.Assignment
		snap     []float64
		budgets  []float64
		cutter   cut.Cutter
		filler   dist.Filler
	}
}

// growFloats resizes buf to n zeroed entries, reallocating only while the
// high-water mark grows.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

type monitorSnap struct {
	t        float64
	achieved float64
	possible float64
}

// New builds a policy from explicit options.
func New(name string, opts Options) *GE {
	if opts.Assigner == nil {
		opts.Assigner = &assign.CumulativeRR{}
	}
	return &GE{name: name, opts: opts, inAES: !opts.AlwaysBQ}
}

// NewGE returns the paper's GE algorithm: cutting to qge, compensation on,
// hybrid ES/WF power distribution, C-RR assignment.
func NewGE(qge float64) *GE {
	return New("GE", Options{Target: qge, Compensation: true, Dist: dist.PolicyHybrid})
}

// NewOQ returns the Over-Qualified baseline: target qge+0.02, no
// compensation (§IV-A1).
func NewOQ(qge float64) *GE {
	return New("OQ", Options{Target: math.Min(qge+0.02, 1), Dist: dist.PolicyHybrid})
}

// NewBE returns the Best-Effort baseline: always BQ, always Water-Filling.
func NewBE() *GE {
	return New("BE", Options{Target: 1, AlwaysBQ: true, Dist: dist.PolicyWF})
}

// NewNoComp returns GE without the compensation policy (Fig. 5 ablation).
func NewNoComp(qge float64) *GE {
	return New("GE-NoComp", Options{Target: qge, Dist: dist.PolicyHybrid})
}

// NewFixedDist returns GE with a fixed power-distribution policy (the
// Fig. 6–7 WF-vs-ES ablation).
func NewFixedDist(qge float64, p dist.Policy) *GE {
	name := "GE-" + p.String()
	return New(name, Options{Target: qge, Compensation: true, Dist: p})
}

// NewBEP returns the power-control baseline BE-P: Best Effort under a
// reduced budget (calibrated by the experiment harness to the least budget
// that still meets Q_GE).
func NewBEP(budget float64) *GE {
	return New("BE-P", Options{Target: 1, AlwaysBQ: true, Dist: dist.PolicyWF,
		BudgetOverride: budget})
}

// NewBES returns the speed-control baseline BE-S: Best Effort under a
// per-core speed cap (calibrated likewise).
func NewBES(cap float64) *GE {
	return New("BE-S", Options{Target: 1, AlwaysBQ: true, Dist: dist.PolicyWF,
		SpeedCap: cap})
}

// Name implements sched.Policy.
func (g *GE) Name() string { return g.name }

// Reset implements sched.Policy.
func (g *GE) Reset() {
	g.inAES = !g.opts.AlwaysBQ
	g.hist = nil
	g.lastHeavy = false
	g.heavySet = false
	g.opts.Assigner.Reset()
	// Drop the job-pointer-holding scratch so a finished run's jobs are not
	// pinned across runs; the float buffers are harmless to keep.
	sc := &g.scratch
	sc.batch, sc.all, sc.edf, sc.perCore = nil, nil, nil, nil
	sc.entries, sc.plan = nil, nil
}

// Schedule implements sched.Policy — the full GE pipeline, degraded
// gracefully to whatever subset of the machine is currently healthy.
func (g *GE) Schedule(ctx *sched.Context) {
	cfg := ctx.Cfg
	now := ctx.Now
	model := cfg.Model

	// 1. Sweep jobs that expired while queued behind a running head.
	for _, c := range ctx.Server.Cores {
		c.DropExpired(now, ctx.Finalize)
	}

	// 2. Batch-assign everything that is waiting, over the surviving
	// cores only. With no healthy core the batch stays queued (it will be
	// shed or expire).
	sc := &g.scratch
	eligible := sc.eligible[:0]
	for _, c := range ctx.Server.Cores {
		if c.Healthy() {
			eligible = append(eligible, c.Index)
		}
	}
	sc.eligible = eligible
	batch := ctx.Waiting.AppendDrain(sc.batch[:0])
	sc.batch = batch[:0]
	if len(batch) > 0 {
		if len(eligible) == 0 {
			for _, j := range batch {
				ctx.Waiting.Push(j)
			}
			batch = nil
		} else {
			sc.loads = ctx.Server.AppendLoads(sc.loads[:0])
			g.opts.Assigner.Assign(batch, eligible, sc.loads)
			if ctx.Observer != nil {
				for _, j := range batch {
					ctx.Observer.Observe(obs.Event{Time: now, Type: obs.EventJobAssign,
						Core: j.Core, Job: j.ID, Value: j.Remaining(), Aux: j.Deadline})
				}
			}
		}
	}
	if cap(sc.perCore) < cfg.Cores {
		perCore := make([][]*job.Job, cfg.Cores)
		copy(perCore, sc.perCore)
		sc.perCore = perCore
	}
	perCore := sc.perCore[:cfg.Cores]
	sc.perCore = perCore
	for i := range perCore {
		perCore[i] = perCore[i][:0]
	}
	for _, c := range ctx.Server.Cores {
		perCore[c.Index] = c.AppendQueue(perCore[c.Index])
	}
	for _, j := range batch {
		perCore[j.Core] = append(perCore[j.Core], j)
	}

	// 3. Mode decision (the compensation policy).
	g.decideMode(ctx)
	ctx.SetMode(g.inAES)

	// 4. Cut (AES) or restore (BQ) — per core by default, or jointly over
	// the whole machine with the GlobalCut option.
	if g.opts.GlobalCut {
		all := sc.all[:0]
		for i := range perCore {
			all = append(all, perCore[i]...)
		}
		sc.all = all
		if g.inAES {
			before := g.snapTargets(ctx, all)
			sc.cutter.LongestFirst(all, cfg.Quality, g.opts.Target)
			emitCuts(ctx, now, all, before)
		} else {
			cut.Restore(all)
		}
	} else {
		for i := range perCore {
			if len(perCore[i]) == 0 {
				continue
			}
			if g.inAES {
				before := g.snapTargets(ctx, perCore[i])
				sc.cutter.LongestFirst(perCore[i], cfg.Quality, g.opts.Target)
				emitCuts(ctx, now, perCore[i], before)
			} else {
				cut.Restore(perCore[i])
			}
		}
	}

	// 5. Power distribution over per-core demands — the *current* budget
	// (which a facility-level cap may have shrunk) split across the
	// surviving cores. Stuck-DVFS cores run at their wedged speed no
	// matter what the scheduler wants, so their draw is reserved off the
	// top and the remainder is distributed over the free healthy cores.
	budget := ctx.Budget
	if budget <= 0 {
		budget = cfg.PowerBudget
	}
	if g.opts.BudgetOverride > 0 && g.opts.BudgetOverride < budget {
		budget = g.opts.BudgetOverride
	}
	demands := growFloats(sc.demands, cfg.Cores)
	peaks := growFloats(sc.peaks, cfg.Cores)
	sc.demands, sc.peaks = demands, peaks
	stuckDraw := 0.0
	for i := range perCore {
		coreModel := cfg.ModelFor(i)
		core := ctx.Server.Cores[i]
		if !core.Healthy() {
			continue // dead cores demand nothing
		}
		if s := core.StuckSpeed(); s > 0 {
			if len(perCore[i]) > 0 {
				stuckDraw += coreModel.Power(s)
			}
			peaks[i] = s
			continue
		}
		maxSpeed := coreModel.Speed(budget) // a core can use at most everything
		if g.opts.SpeedCap > 0 && g.opts.SpeedCap < maxSpeed {
			maxSpeed = g.opts.SpeedCap
		}
		peak := g.peakSpeed(now, perCore[i])
		if peak > maxSpeed {
			peak = maxSpeed
		}
		peaks[i] = peak
		demands[i] = coreModel.Power(peak)
	}
	free := sc.free[:0]
	for _, i := range eligible {
		if ctx.Server.Cores[i].StuckSpeed() <= 0 {
			free = append(free, i)
		}
	}
	sc.free = free
	distributable := budget - stuckDraw
	if distributable < 0 {
		distributable = 0
	}
	heavy := ctx.ArrivalRate >= cfg.CriticalLoad
	if g.opts.Dist == dist.PolicyHybrid && (!g.heavySet || heavy != g.lastHeavy) {
		obs.Emit(ctx.Observer, obs.Event{Time: now, Type: obs.EventDistSwitch,
			Core: -1, Job: -1, Value: ctx.ArrivalRate, Flag: heavy})
	}
	g.lastHeavy, g.heavySet = heavy, true
	compact := growFloats(sc.compact, len(free))
	sc.compact = compact
	for k, i := range free {
		compact[k] = demands[i]
	}
	compactAlloc := sc.filler.Distribute(g.opts.Dist, distributable, compact, heavy)
	alloc := growFloats(sc.alloc, cfg.Cores)
	sc.alloc = alloc
	for k, i := range free {
		alloc[i] = compactAlloc[k]
	}

	// Discrete speed scaling: rectify each core's chosen speed against the
	// ladder (paper §IV-A5), lowest allocation first.
	var discSpeeds []float64
	if cfg.Ladder != nil {
		chosen := growFloats(sc.chosen, cfg.Cores)
		sc.chosen = chosen
		for i := range chosen {
			s := model.Speed(alloc[i])
			if peaks[i] < s {
				s = peaks[i] // don't ask for more than the workload needs
			}
			chosen[i] = model.Power(s)
		}
		discSpeeds, _ = sc.filler.RectifyDiscrete(model, cfg.Ladder, budget, chosen)
	}

	// 6. Per-core second cut + Energy-OPT plan. Dead cores keep an empty
	// plan; stuck cores plan at their wedged speed (the hardware ignores
	// any other request).
	for i, c := range ctx.Server.Cores {
		jobs := perCore[i]
		if !c.Healthy() || len(jobs) == 0 {
			c.SetPlan(nil)
			continue
		}
		speedCap := cfg.ModelFor(i).Speed(alloc[i])
		if g.opts.SpeedCap > 0 && g.opts.SpeedCap < speedCap {
			speedCap = g.opts.SpeedCap
		}
		if cfg.Ladder != nil {
			speedCap = discSpeeds[i]
		}
		if s := c.StuckSpeed(); s > 0 {
			speedCap = s
		}
		// One EDF-sorted copy of the core's jobs serves the peak query,
		// the Quality-OPT cut, and the plan layout. Stable-sorting a copy
		// yields exactly the order the per-call sorts used to produce, so
		// the schedule is bit-identical to the allocating path.
		edf := append(sc.edf[:0], jobs...)
		job.SortEDF(edf)
		sc.edf = edf
		entries := sc.entries[:0]
		if speedCap <= 0 {
			// No power granted: park the jobs; they expire at deadlines.
			for _, j := range edf {
				entries = append(entries, machine.Entry{Job: j, Speed: 0})
			}
			sc.entries = entries
			c.SetPlan(entries) // SetPlan copies; entries stays reusable
			continue
		}
		// snapTargets/emitCuts walk `jobs` (queue order), not `edf`: the
		// emission order of EventJobCut within one trigger is part of the
		// golden trace.
		if yds.PeakSpeedEDF(now, edf) > speedCap*(1+1e-9) {
			before := g.snapTargets(ctx, jobs)
			_, sc.budgets = qopt.AllocateEDF(now, edf, power.Rate(speedCap), cfg.Quality, sc.budgets)
			emitCuts(ctx, now, jobs, before)
		}
		if cfg.Ladder != nil {
			// Core-level constant discrete speed, EDF order.
			for _, j := range edf {
				entries = append(entries, machine.Entry{Job: j, Speed: speedCap})
			}
		} else {
			plan := yds.AppendPlanCommonRelease(sc.plan[:0], now, edf, speedCap)
			sc.plan = plan
			for _, a := range plan {
				entries = append(entries, machine.Entry{Job: a.Job, Speed: a.Speed})
			}
		}
		sc.entries = entries
		c.SetPlan(entries)
	}
}

// decideMode implements the compensation policy.
func (g *GE) decideMode(ctx *sched.Context) {
	if g.opts.AlwaysBQ {
		g.inAES = false
		return
	}
	if !g.opts.Compensation {
		g.inAES = true
		return
	}
	g.inAES = g.monitoredQuality(ctx) >= ctx.Cfg.QGE
}

// monitoredQuality returns the cumulative achieved quality, or the windowed
// quality when MonitorWindow is set.
func (g *GE) monitoredQuality(ctx *sched.Context) float64 {
	acc := ctx.Monitor
	if g.opts.MonitorWindow <= 0 {
		return acc.Quality()
	}
	snap := monitorSnap{t: ctx.Now, achieved: acc.Achieved(), possible: acc.Possible()}
	g.hist = append(g.hist, snap)
	cutoff := ctx.Now - g.opts.MonitorWindow
	// Drop history older than the window, keeping one snapshot at or
	// before the cutoff as the baseline.
	for len(g.hist) > 1 && g.hist[1].t <= cutoff {
		g.hist = g.hist[1:]
	}
	base := g.hist[0]
	dp := snap.possible - base.possible
	if dp <= 0 {
		return 1
	}
	return (snap.achieved - base.achieved) / dp
}

// InAES reports the current mode (tests and diagnostics).
func (g *GE) InAES() bool { return g.inAES }

// peakSpeed is yds.PeakSpeed via the scratch EDF buffer: copy, stable-sort,
// query — no per-call allocation.
func (g *GE) peakSpeed(now float64, jobs []*job.Job) float64 {
	if len(jobs) == 0 {
		return 0
	}
	edf := append(g.scratch.edf[:0], jobs...)
	job.SortEDF(edf)
	g.scratch.edf = edf
	return yds.PeakSpeedEDF(now, edf)
}

// snapTargets records the jobs' targets before a cutting pass so the diffs
// can be emitted as EventJobCut. Returns nil (and emitCuts no-ops) when no
// observer is attached, keeping the hot path allocation-free. The returned
// slice is GE-owned scratch: consume it (emitCuts) before the next snap.
func (g *GE) snapTargets(ctx *sched.Context, jobs []*job.Job) []float64 {
	if ctx.Observer == nil || len(jobs) == 0 {
		return nil
	}
	if cap(g.scratch.snap) < len(jobs) {
		g.scratch.snap = make([]float64, len(jobs))
	}
	ts := g.scratch.snap[:len(jobs)]
	for i, j := range jobs {
		ts[i] = j.Target
	}
	return ts
}

// emitCuts emits one EventJobCut per job whose target the pass reduced.
func emitCuts(ctx *sched.Context, now float64, jobs []*job.Job, before []float64) {
	if before == nil {
		return
	}
	for k, j := range jobs {
		if j.Target < before[k] {
			ctx.Observer.Observe(obs.Event{Time: now, Type: obs.EventJobCut,
				Core: j.Core, Job: j.ID, Value: j.Target, Aux: j.Demand})
		}
	}
}
