package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{At: -1, Kind: Blackhole},
		{At: 0, Kind: Blackhole, Duration: -2},
		{At: 0, Kind: Latency, Delay: 0},                // latency needs a positive delay
		{At: 0, Kind: Latency, Delay: 0.1, Jitter: 0.5}, // jitter > delay
		{At: 0, Kind: HTTPError, Code: 404},             // must be 5xx
		{At: 0, Kind: Kind(42)},                         // unknown kind
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d (%+v) validated, want error", i, s)
		}
		if _, err := New([]Spec{s}); err == nil {
			t.Errorf("New accepted bad spec %d (%+v)", i, s)
		}
	}
	good := []Spec{
		{At: 0, Kind: Blackhole}, // permanent
		{At: 1.5, Kind: Reset, Duration: 2},
		{At: 0, Kind: Latency, Delay: 0.2, Jitter: 0.05},
		{At: 3, Kind: HTTPError, Code: 503, Duration: 1},
		{At: 3, Kind: HTTPError, Duration: 1}, // code defaults later
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %d (%+v): %v", i, s, err)
		}
	}
}

func TestScheduleOrderingAndActiveAt(t *testing.T) {
	s, err := New([]Spec{
		{At: 5, Kind: Reset, Duration: 1},
		{At: 1, Kind: Blackhole, Duration: 2},
		{At: 2, Kind: Latency, Delay: 0.1, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	specs := s.Specs()
	if specs[0].At != 1 || specs[1].At != 2 || specs[2].At != 5 {
		t.Fatalf("specs not onset-ordered: %+v", specs)
	}
	cases := []struct {
		t    float64
		want []Kind
	}{
		{0.5, nil},
		{1.0, []Kind{Blackhole}},
		{2.5, []Kind{Blackhole, Latency}},
		{3.5, []Kind{Latency}},
		{5.2, []Kind{Latency, Reset}},
		{30, nil}, // everything has lapsed
	}
	for _, c := range cases {
		var got []Kind
		for _, sp := range s.ActiveAt(c.t) {
			got = append(got, sp.Kind)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ActiveAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// A permanent window never lapses.
	perm, _ := New([]Spec{{At: 1, Kind: Blackhole}})
	if len(perm.ActiveAt(1e9)) != 1 {
		t.Fatal("permanent window lapsed")
	}
	var nilSched *Schedule
	if nilSched.ActiveAt(1) != nil || nilSched.Len() != 0 {
		t.Fatal("nil schedule is not quiet")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Generate(7, 60, 10, 3, Blackhole, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(7, 60, 10, 3, Blackhole, 0, 0)
	if !reflect.DeepEqual(a.Specs(), b.Specs()) {
		t.Fatal("same seed produced different schedules")
	}
	if a.Len() == 0 {
		t.Fatal("60s horizon with 10s MTBF produced no outages")
	}
	c, _ := Generate(8, 60, 10, 3, Blackhole, 0, 0)
	if reflect.DeepEqual(a.Specs(), c.Specs()) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, sp := range a.Specs() {
		if sp.At >= 60 {
			t.Fatalf("onset %v beyond the horizon", sp.At)
		}
		if sp.Duration <= 0 {
			t.Fatalf("generated window is permanent: %+v", sp)
		}
	}
	if _, err := Generate(1, 0, 10, 3, Blackhole, 0, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := Generate(1, 60, 0, 3, Blackhole, 0, 0); err == nil {
		t.Fatal("zero MTBF accepted")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Latency, Blackhole, Reset, HTTPError} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for alias, want := range map[string]Kind{"slow": Latency, "stall": Blackhole, "rst": Reset, "5xx": HTTPError} {
		if got, err := ParseKind(alias); err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v, want %v", alias, got, err, want)
		}
	}
	if _, err := ParseKind("meteor"); err == nil {
		t.Fatal("unknown kind parsed")
	}
}

// startProxy stands up a backend + chaos proxy pair and returns a client
// whose requests traverse the proxy, plus the proxy for Close.
func startProxy(t *testing.T, sched *Schedule, handler http.HandlerFunc) (*Proxy, string) {
	t.Helper()
	backend := httptest.NewServer(handler)
	t.Cleanup(backend.Close)
	target := strings.TrimPrefix(backend.URL, "http://")
	p, err := NewProxy("127.0.0.1:0", target, sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	p.Start()
	return p, "http://" + p.Addr()
}

func echoOK(w http.ResponseWriter, r *http.Request) {
	_, _ = io.Copy(io.Discard, r.Body)
	fmt.Fprint(w, "pong")
}

// freshClient avoids keep-alive reuse so each request traverses the proxy's
// accept path independently.
func freshClient(timeout time.Duration) *http.Client {
	tr := &http.Transport{DisableKeepAlives: true}
	return &http.Client{Transport: tr, Timeout: timeout}
}

func TestProxyTransparentWhenQuiet(t *testing.T) {
	sched, _ := New(nil)
	_, base := startProxy(t, sched, echoOK)
	client := freshClient(5 * time.Second)
	for i := 0; i < 3; i++ {
		resp, err := client.Get(base + "/ping")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "pong" {
			t.Fatalf("request %d: %d %q", i, resp.StatusCode, body)
		}
	}
}

// flakyListener fails its first Accept with a transient error, mimicking
// ECONNABORTED/EMFILE, then delegates to the real listener.
type flakyListener struct {
	net.Listener
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures > 0 {
		l.failures--
		return nil, errors.New("accept tcp: too many open files")
	}
	return l.Listener.Accept()
}

// TestProxyAcceptRetriesTransientErrors: a transient Accept failure must not
// end the accept loop — that would silently black-hole every later
// connection while the proxy process keeps running.
func TestProxyAcceptRetriesTransientErrors(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(echoOK))
	t.Cleanup(backend.Close)
	sched, _ := New(nil)
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(backend.URL, "http://"), sched, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	p.ln = &flakyListener{Listener: p.ln, failures: 1} // before Start: no racing Accept yet
	p.Start()
	client := freshClient(5 * time.Second)
	resp, err := client.Get("http://" + p.Addr() + "/ping")
	if err != nil {
		t.Fatalf("request after transient accept error: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "pong" {
		t.Fatalf("got %d %q through the proxy, want 200 pong", resp.StatusCode, body)
	}
}

func TestProxyInjectsLatency(t *testing.T) {
	sched, err := New([]Spec{{At: 0, Kind: Latency, Delay: 0.15}})
	if err != nil {
		t.Fatal(err)
	}
	_, base := startProxy(t, sched, echoOK)
	client := freshClient(10 * time.Second)
	start := time.Now()
	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// Request and response chunks each pay the delay at least once.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("latency window added only %v, want >= 150ms", elapsed)
	}
}

func TestProxyResetsConnections(t *testing.T) {
	sched, err := New([]Spec{{At: 0, Kind: Reset}})
	if err != nil {
		t.Fatal(err)
	}
	_, base := startProxy(t, sched, echoOK)
	client := freshClient(2 * time.Second)
	if _, err := client.Get(base + "/ping"); err == nil {
		t.Fatal("reset window let a request through")
	}
}

func TestProxyServes5xxBurst(t *testing.T) {
	sched, err := New([]Spec{{At: 0, Kind: HTTPError, Code: 503}})
	if err != nil {
		t.Fatal(err)
	}
	_, base := startProxy(t, sched, echoOK)
	client := freshClient(5 * time.Second)
	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatalf("5xx burst should still answer HTTP: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("chaos 503 missing Retry-After")
	}
}

// TestProxyBlackholeRecovers: a request issued inside a finite blackhole
// window parks and then completes once the window lifts — the schedule
// clock, not luck, decides when the stall ends.
func TestProxyBlackholeRecovers(t *testing.T) {
	sched, err := New([]Spec{{At: 0, Kind: Blackhole, Duration: 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	_, base := startProxy(t, sched, echoOK)
	client := freshClient(10 * time.Second)
	start := time.Now()
	resp, err := client.Get(base + "/ping")
	if err != nil {
		t.Fatalf("blackholed request never recovered: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "pong" {
		t.Fatalf("recovered with %d %q", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < 350*time.Millisecond {
		t.Fatalf("request finished in %v, inside the 400ms blackhole window", elapsed)
	}
}

func TestScheduleString(t *testing.T) {
	var nilSched *Schedule
	if nilSched.String() != "quiet" {
		t.Fatalf("nil schedule renders %q", nilSched.String())
	}
	s, _ := New([]Spec{{At: 2, Kind: Blackhole, Duration: 5}, {At: 9, Kind: Reset}})
	want := "blackhole@2+5s,reset@9"
	if s.String() != want {
		t.Fatalf("String() = %q, want %q", s.String(), want)
	}
}
