package chaos

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"goodenough/internal/rng"
)

// pollInterval is how often parked or idle connections re-check the
// schedule, bounding how stale an injected state can be.
const pollInterval = 25 * time.Millisecond

// Proxy is a TCP chaos proxy: it forwards listener ↔ target byte streams
// and consults its Schedule continuously — at accept time and per forwarded
// chunk — so faults bite mid-connection, which is exactly how a stalled
// replica looks to a gateway holding a warm keep-alive connection.
//
// Precedence when windows overlap: Reset > Blackhole > HTTPError >
// Latency. HTTPError is applied at accept time only (it needs a request
// boundary); the stream-level faults apply everywhere.
type Proxy struct {
	target string
	sched  *Schedule
	ln     net.Listener
	start  time.Time

	mu    sync.Mutex
	jit   *rng.Source
	conns map[net.Conn]struct{}

	closed chan struct{}
	wg     sync.WaitGroup

	// Logf, when set, receives one line per injected fault.
	Logf func(format string, args ...any)
}

// NewProxy listens on listenAddr and will forward to target under the
// schedule. Use ":0" to pick a free port (see Addr). Start begins serving.
func NewProxy(listenAddr, target string, sched *Schedule, seed uint64) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", listenAddr, err)
	}
	return &Proxy{
		target: target,
		sched:  sched,
		ln:     ln,
		start:  time.Now(),
		jit:    rng.New(seed ^ 0x9e3779b97f4a7c15),
		conns:  map[net.Conn]struct{}{},
		closed: make(chan struct{}),
		Logf:   func(string, ...any) {},
	}, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// elapsed is seconds since the proxy started — the schedule clock.
func (p *Proxy) elapsed() float64 { return time.Since(p.start).Seconds() }

// active returns the highest-precedence fault covering now, or nil.
func (p *Proxy) active() *Spec {
	specs := p.sched.ActiveAt(p.elapsed())
	if len(specs) == 0 {
		return nil
	}
	best := specs[0]
	rank := func(k Kind) int {
		switch k {
		case Reset:
			return 3
		case Blackhole:
			return 2
		case HTTPError:
			return 1
		default:
			return 0
		}
	}
	for _, s := range specs[1:] {
		if rank(s.Kind) > rank(best.Kind) {
			best = s
		}
	}
	return &best
}

// Start serves connections until Close.
func (p *Proxy) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			c, err := p.ln.Accept()
			if err != nil {
				select {
				case <-p.closed:
					return
				default:
				}
				if errors.Is(err, net.ErrClosed) {
					return
				}
				// Transient accept failure (ECONNABORTED, EMFILE, ...): back
				// off briefly and keep serving. Returning here would silently
				// turn the proxy into a black hole for the rest of the run.
				p.Logf("gechaos: accept (retrying): %v", err)
				select {
				case <-p.closed:
					return
				case <-time.After(pollInterval):
				}
				continue
			}
			p.track(c, true)
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				p.handle(c)
			}()
		}
	}()
}

// Close stops accepting, severs every tracked connection, and waits.
func (p *Proxy) Close() error {
	select {
	case <-p.closed:
		return nil
	default:
	}
	close(p.closed)
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) track(c net.Conn, add bool) {
	p.mu.Lock()
	if add {
		p.conns[c] = struct{}{}
	} else {
		delete(p.conns, c)
	}
	p.mu.Unlock()
}

// jitter draws a uniform offset in [-j, +j] seconds.
func (p *Proxy) jitter(j float64) time.Duration {
	if j <= 0 {
		return 0
	}
	p.mu.Lock()
	v := p.jit.Uniform(-j, j)
	p.mu.Unlock()
	return time.Duration(v * float64(time.Second))
}

// hardClose closes a TCP connection with RST semantics where possible.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// park blocks while the given kind stays active, re-checking on the poll
// interval; returns false when the proxy closed meanwhile.
func (p *Proxy) park(kind Kind) bool {
	for {
		f := p.active()
		if f == nil || f.Kind != kind {
			return true
		}
		select {
		case <-p.closed:
			return false
		case <-time.After(pollInterval):
		}
	}
}

// handle runs one client connection through the schedule.
func (p *Proxy) handle(client net.Conn) {
	defer p.track(client, false)
	defer client.Close()

	if f := p.active(); f != nil {
		switch f.Kind {
		case Reset:
			p.Logf("gechaos: reset %s", client.RemoteAddr())
			hardClose(client)
			return
		case HTTPError:
			p.serve5xx(client, f)
			return
		case Blackhole:
			p.Logf("gechaos: blackhole %s", client.RemoteAddr())
			if !p.park(Blackhole) {
				return
			}
		}
	}

	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.Logf("gechaos: dial %s: %v", p.target, err)
		return
	}
	p.track(server, true)
	defer p.track(server, false)
	defer server.Close()

	done := make(chan struct{}, 2)
	go func() { p.pump(server, client); done <- struct{}{} }()
	go func() { p.pump(client, server); done <- struct{}{} }()
	// Either direction ending (EOF, reset injection, proxy close) tears the
	// pair down; Close deadlines unblock the other pump.
	<-done
	hardCloseBoth(client, server)
	<-done
}

func hardCloseBoth(a, b net.Conn) {
	_ = a.SetDeadline(time.Now())
	_ = b.SetDeadline(time.Now())
	a.Close()
	b.Close()
}

// serve5xx answers one connection with a canned error burst response.
func (p *Proxy) serve5xx(c net.Conn, f *Spec) {
	code := f.Code
	if code == 0 {
		code = 503
	}
	p.Logf("gechaos: %d burst to %s", code, c.RemoteAddr())
	// Read whatever request bytes arrive (bounded), then answer and close.
	_ = c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 4096)
	_, _ = c.Read(buf)
	reason := "Service Unavailable"
	if code != 503 {
		reason = "Chaos Injected Error"
	}
	resp := fmt.Sprintf("HTTP/1.1 %d %s\r\nRetry-After: 1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n", code, reason)
	_ = c.SetWriteDeadline(time.Now().Add(time.Second))
	_, _ = c.Write([]byte(resp))
}

// pump copies src → dst, consulting the schedule before every chunk so
// faults apply mid-stream: Reset severs, Blackhole parks the byte flow,
// Latency sleeps delay ± jitter per chunk. Short read deadlines keep idle
// connections re-checking the schedule.
func (p *Proxy) pump(dst, src net.Conn) {
	buf := make([]byte, 32<<10)
	for {
		select {
		case <-p.closed:
			return
		default:
		}
		if f := p.active(); f != nil {
			switch f.Kind {
			case Reset:
				p.Logf("gechaos: reset mid-stream %s", src.RemoteAddr())
				hardClose(dst)
				hardClose(src)
				return
			case Blackhole:
				if !p.park(Blackhole) {
					return
				}
				continue // re-evaluate before touching bytes
			}
		}
		_ = src.SetReadDeadline(time.Now().Add(pollInterval * 4))
		n, err := src.Read(buf)
		if n > 0 {
			if f := p.active(); f != nil && f.Kind == Latency {
				d := time.Duration(f.Delay*float64(time.Second)) + p.jitter(f.Jitter)
				if d > 0 {
					select {
					case <-p.closed:
						return
					case <-time.After(d):
					}
				}
			}
			_ = dst.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue // idle: loop to re-check the schedule
			}
			// EOF or hard error: half-close the write side so the peer sees
			// stream end, then stop this direction.
			if tc, ok := dst.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
			return
		}
	}
}

// String renders the schedule compactly for logs.
func (s *Schedule) String() string {
	if s == nil || len(s.specs) == 0 {
		return "quiet"
	}
	parts := make([]string, 0, len(s.specs))
	for _, sp := range s.specs {
		if sp.Duration > 0 {
			parts = append(parts, fmt.Sprintf("%s@%g+%gs", sp.Kind, sp.At, sp.Duration))
		} else {
			parts = append(parts, fmt.Sprintf("%s@%g", sp.Kind, sp.At))
		}
	}
	return strings.Join(parts, ",")
}
