// Package chaos is the network-level sibling of internal/faults: a
// deterministic, schedule-driven chaos proxy that sits between the gateway
// and a geserve replica and injects the failure modes distributed serving
// actually meets — added latency with jitter, connection resets,
// black-holes (accepted but never answered), and 5xx bursts.
//
// The schedule format mirrors internal/faults: a Spec names an onset time,
// a Kind, and a Duration (0 = permanent); New expands and validates a Spec
// list, and Generate draws an MTBF/MTTR renewal process from the repo's
// stable rng, so the same (seed, horizon, mtbf, mttr, kind) tuple yields
// the same outage windows on every run and platform. That determinism is
// what lets integration tests and CI assert exact failover behavior
// instead of hoping the network misbehaves on cue.
package chaos

import (
	"fmt"
	"math"
	"sort"

	"goodenough/internal/rng"
)

// Kind labels one injected failure mode.
type Kind int

const (
	// Latency delays each forwarded chunk by Delay ± Jitter seconds.
	Latency Kind = iota
	// Blackhole accepts traffic but forwards nothing: bytes park until the
	// window ends or the peer gives up — the classic stalled replica.
	Blackhole
	// Reset closes connections immediately (RST where the OS allows).
	Reset
	// HTTPError answers new connections with a canned 5xx burst instead of
	// forwarding.
	HTTPError
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Blackhole:
		return "blackhole"
	case Reset:
		return "reset"
	case HTTPError:
		return "http-error"
	default:
		return fmt.Sprintf("chaos(%d)", int(k))
	}
}

// ParseKind maps config names to Kinds.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "latency", "slow":
		return Latency, nil
	case "blackhole", "stall":
		return Blackhole, nil
	case "reset", "rst":
		return Reset, nil
	case "http-error", "5xx":
		return HTTPError, nil
	default:
		return 0, fmt.Errorf("chaos: unknown kind %q (latency|blackhole|reset|http-error)", s)
	}
}

// Spec describes one chaos window, mirroring faults.Spec: an onset, a kind,
// and an optional duration after which the fault lifts. Duration 0 makes it
// permanent.
type Spec struct {
	// At is the onset in seconds since the proxy started.
	At float64 `json:"at"`
	// Kind is the failure mode; in JSON use the ParseKind names.
	Kind Kind `json:"kind"`
	// Duration, when positive, ends the window at At+Duration; zero is
	// permanent.
	Duration float64 `json:"duration"`
	// Delay is the added latency in seconds (Latency only).
	Delay float64 `json:"delay,omitempty"`
	// Jitter is the uniform ± latency spread in seconds (Latency only).
	Jitter float64 `json:"jitter,omitempty"`
	// Code is the status for HTTPError (default 503).
	Code int `json:"code,omitempty"`
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	if math.IsNaN(s.At) || math.IsInf(s.At, 0) || s.At < 0 {
		return fmt.Errorf("chaos: onset time %v must be finite and non-negative", s.At)
	}
	if math.IsNaN(s.Duration) || math.IsInf(s.Duration, 0) || s.Duration < 0 {
		return fmt.Errorf("chaos: duration %v must be finite and non-negative", s.Duration)
	}
	switch s.Kind {
	case Latency:
		if math.IsNaN(s.Delay) || math.IsInf(s.Delay, 0) || s.Delay <= 0 {
			return fmt.Errorf("chaos: latency delay %v must be finite and positive", s.Delay)
		}
		if math.IsNaN(s.Jitter) || math.IsInf(s.Jitter, 0) || s.Jitter < 0 || s.Jitter > s.Delay {
			return fmt.Errorf("chaos: jitter %v must be in [0, delay]", s.Jitter)
		}
	case Blackhole, Reset:
		// No payload.
	case HTTPError:
		if s.Code != 0 && (s.Code < 500 || s.Code > 599) {
			return fmt.Errorf("chaos: http-error code %d must be a 5xx", s.Code)
		}
	default:
		return fmt.Errorf("chaos: unknown kind %d", int(s.Kind))
	}
	return nil
}

// end returns the window's end time, +Inf when permanent.
func (s Spec) end() float64 {
	if s.Duration <= 0 {
		return math.Inf(1)
	}
	return s.At + s.Duration
}

// Schedule is a validated set of chaos windows, queried by elapsed time.
type Schedule struct {
	specs []Spec
}

// New validates specs into a Schedule, ordered by onset.
func New(specs []Spec) (*Schedule, error) {
	out := make([]Spec, 0, len(specs))
	for i, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: spec %d: %w", i, err)
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		return out[a].Kind < out[b].Kind
	})
	return &Schedule{specs: out}, nil
}

// Generate draws outage windows from an alternating up/down renewal
// process — up for Exp(1/mtbf), down (injecting kind) for Exp(1/mttr) —
// until the horizon, deterministically for a fixed seed. Latency windows
// get the supplied delay/jitter; HTTPError windows get code 503.
func Generate(seed uint64, horizon, mtbf, mttr float64, kind Kind, delay, jitter float64) (*Schedule, error) {
	if math.IsNaN(horizon) || math.IsInf(horizon, 0) || horizon <= 0 {
		return nil, fmt.Errorf("chaos: generator horizon %v must be finite and positive", horizon)
	}
	if math.IsNaN(mtbf) || mtbf <= 0 {
		return nil, fmt.Errorf("chaos: MTBF %v must be positive", mtbf)
	}
	if math.IsNaN(mttr) || mttr <= 0 {
		return nil, fmt.Errorf("chaos: MTTR %v must be positive", mttr)
	}
	src := rng.New(seed ^ 0xc4a05bad5eed)
	var specs []Spec
	t := 0.0
	for {
		t += src.Exp(1 / mtbf)
		if t >= horizon {
			break
		}
		down := src.Exp(1 / mttr)
		spec := Spec{At: t, Kind: kind, Duration: down}
		switch kind {
		case Latency:
			spec.Delay, spec.Jitter = delay, jitter
		case HTTPError:
			spec.Code = 503
		}
		specs = append(specs, spec)
		t += down
	}
	return New(specs)
}

// Specs returns a copy of the ordered windows.
func (s *Schedule) Specs() []Spec {
	if s == nil {
		return nil
	}
	return append([]Spec(nil), s.specs...)
}

// Len returns the number of windows.
func (s *Schedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.specs)
}

// ActiveAt returns the windows covering elapsed time t, in onset order. A
// nil schedule is always quiet.
func (s *Schedule) ActiveAt(t float64) []Spec {
	if s == nil {
		return nil
	}
	var active []Spec
	for _, sp := range s.specs {
		if sp.At <= t && t < sp.end() {
			active = append(active, sp)
		}
	}
	return active
}
