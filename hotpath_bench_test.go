// BenchmarkQuantum* measures the full scheduler hot path — sim kernel →
// sched.Runner → GE policy → cutting/distribution/water-filling — as
// events/sec over a complete run. Unlike BenchmarkFig* (which sweep whole
// figures), these isolate the per-quantum cost the allocation-free kernel
// targets; scripts/bench_baseline.sh records them into BENCH_BASELINE.json
// and `make bench-check` gates regressions.
package goodenough

import (
	"testing"

	"goodenough/internal/core"
	"goodenough/internal/sched"
	"goodenough/internal/workload"
)

// quantumRun executes one GE run at the given rate and returns events
// delivered, so events/sec aggregates across b.N runs.
func quantumRun(b *testing.B, rate float64, seed uint64) int64 {
	b.Helper()
	cfg := sched.Defaults()
	spec := workload.Spec{
		ArrivalRate: rate,
		ParetoAlpha: 3,
		Xmin:        130,
		Xmax:        1000,
		Window:      0.15,
		Duration:    5,
		Seed:        seed,
	}
	r, err := sched.NewRunner(cfg, core.NewGE(cfg.QGE), spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		b.Fatal(err)
	}
	return r.EventsProcessed()
}

// BenchmarkQuantumCritical runs GE at the critical load (154 req/s), the
// regime where the hybrid policy straddles light/heavy and both water-
// filling and equal-share paths are exercised.
func BenchmarkQuantumCritical(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += quantumRun(b, 154, 2017)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkQuantumOverload runs GE at 2× critical load: deep waiting
// queues, counter triggers, and heavy job cutting — the worst-case
// per-quantum sort and cut volume.
func BenchmarkQuantumOverload(b *testing.B) {
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		events += quantumRun(b, 308, 2017)
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}
