package goodenough

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"goodenough/internal/sched"
	"goodenough/internal/verify"
	"goodenough/internal/workload"
)

// quadKillConfig is the acceptance scenario: a seeded GE run that loses 4
// of its 16 cores mid-run (two permanently, two transiently).
func quadKillConfig() Config {
	cfg := DefaultConfig()
	cfg.DurationSec = 30
	cfg.ArrivalRate = 180
	cfg.Faults = []FaultSpec{
		{AtSec: 5, Kind: "core-fail", Core: 1},
		{AtSec: 6, Kind: "core-fail", Core: 4},
		{AtSec: 7, Kind: "core-fail", Core: 9, DurationSec: 10},
		{AtSec: 8, Kind: "core-fail", Core: 14, DurationSec: 12},
	}
	return cfg
}

func TestQuadCoreKillAcceptance(t *testing.T) {
	res, err := Run(quadKillConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CoreFailures != 4 {
		t.Fatalf("core failures = %d, want 4", res.CoreFailures)
	}
	if res.RequeuedJobs == 0 {
		t.Fatal("no jobs requeued despite killing loaded cores")
	}
	if res.SurvivingCapacity <= 0 || res.SurvivingCapacity >= 1 {
		t.Fatalf("surviving capacity = %v, want in (0,1)", res.SurvivingCapacity)
	}
	if int64(res.Jobs) != res.Completed+res.Expired+res.DroppedJobs {
		t.Fatalf("accounting: %d jobs != %d completed + %d expired + %d dropped",
			res.Jobs, res.Completed, res.Expired, res.DroppedJobs)
	}
	if res.Quality <= 0 || res.Quality > 1 {
		t.Fatalf("quality = %v out of range", res.Quality)
	}
}

func TestQuadCoreKillDeterministic(t *testing.T) {
	a, err := Run(quadKillConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quadKillConfig())
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
	if sa != sb {
		t.Fatalf("identical seed + fault schedule diverged:\n%s\n%s", sa, sb)
	}
}

func TestQuadCoreKillUpholdsInvariants(t *testing.T) {
	cfg := quadKillConfig()
	scfg, _, policy, err := lower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{
		ArrivalRate: cfg.ArrivalRate, ParetoAlpha: cfg.ParetoAlpha,
		Xmin: cfg.DemandMin, Xmax: cfg.DemandMax,
		Window: cfg.WindowMS / 1000, Duration: cfg.DurationSec, Seed: cfg.Seed,
	}
	ck := verify.Wrap(policy)
	r, err := sched.NewRunner(scfg, ck, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if !ck.Ok() {
		t.Fatalf("GE violated invariants under the quad-kill schedule:\n%v",
			ck.Violations()[0])
	}
}

func TestGeneratedFaultsFromPublicConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec = 20
	cfg.ArrivalRate = 150
	cfg.FaultMTBFSec = 12
	cfg.FaultMTTRSec = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("generated fault schedule is not deterministic for a fixed seed")
	}
	if int64(a.Jobs) != a.Completed+a.Expired+a.DroppedJobs {
		t.Fatal("accounting broken under generated faults")
	}
}

func TestFaultConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown kind", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: 1, Kind: "meteor-strike", Core: 0}}
		}, "unknown fault kind"},
		{"core out of range", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: 1, Kind: "core-fail", Core: 99}}
		}, "core 99"},
		{"negative onset", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: -2, Kind: "core-fail", Core: 0}}
		}, "onset"},
		{"cap without watts", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: 1, Kind: "budget-cap"}}
		}, "budget cap"},
		{"stuck without speed", func(c *Config) {
			c.Faults = []FaultSpec{{AtSec: 1, Kind: "speed-stuck", Core: 0}}
		}, "speed"},
		{"generator without duration", func(c *Config) {
			c.DurationSec = 0
			c.FaultMTBFSec = 10
			c.FaultMTTRSec = 2
		}, "DurationSec"},
		{"generator negative mttr", func(c *Config) {
			c.FaultMTBFSec = 10
			c.FaultMTTRSec = -1
		}, "MTTR"},
		{"zero cores", func(c *Config) {
			c.Cores = 0
		}, "cores must be positive"},
		{"negative arrival rate", func(c *Config) {
			c.ArrivalRate = -10
		}, "arrival rate"},
		{"NaN discrete speed", func(c *Config) {
			c.DiscreteSpeeds = []float64{0.5, math.NaN(), 1.5}
		}, "speed"},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
