package goodenough

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickCfg(name string, rate float64) Config {
	cfg := DefaultConfig()
	cfg.Scheduler = name
	cfg.ArrivalRate = rate
	cfg.DurationSec = 15
	return cfg
}

func TestDefaultConfigRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler != "GE" {
		t.Fatalf("scheduler = %q", res.Scheduler)
	}
	if res.Quality < 0.85 || res.Quality > 1 {
		t.Fatalf("quality = %v", res.Quality)
	}
	if res.Energy <= 0 || res.Jobs == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestEverySchedulerRuns(t *testing.T) {
	for _, name := range Schedulers() {
		cfg := quickCfg(name, 150)
		cfg.BEPBudget = 250
		cfg.BESCap = 1.8
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Jobs == 0 {
			t.Fatalf("%s: no jobs", name)
		}
		if int64(res.Jobs) != res.Completed+res.Expired {
			t.Fatalf("%s: job accounting broken: %+v", name, res)
		}
		if res.Quality < 0 || res.Quality > 1 {
			t.Fatalf("%s: quality %v", name, res.Quality)
		}
	}
}

func TestSchedulersSorted(t *testing.T) {
	names := Schedulers()
	if len(names) != 12 {
		t.Fatalf("expected 12 schedulers, got %d: %v", len(names), names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"ge", "be", "oq", "fcfs", "fdfs", "ljf", "sjf"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing scheduler %q in %v", want, names)
		}
	}
}

func TestUnknownSchedulerRejected(t *testing.T) {
	cfg := quickCfg("nope", 100)
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestBEPRequiresBudget(t *testing.T) {
	cfg := quickCfg("be-p", 100)
	cfg.BEPBudget = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("be-p without budget accepted")
	}
}

func TestBESRequiresCap(t *testing.T) {
	cfg := quickCfg("be-s", 100)
	cfg.BESCap = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("be-s without cap accepted")
	}
}

func TestInvalidConfigSurfaces(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.PowerBudget = -1 },
		func(c *Config) { c.QualityC = 0 },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.DemandMax = 0 },
		func(c *Config) { c.DurationSec = 0 },
		func(c *Config) { c.QuantumMS = 0 },
		func(c *Config) { c.DiscreteSpeeds = []float64{-1} },
	}
	for i, mut := range mutations {
		cfg := quickCfg("ge", 100)
		mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGESavesEnergyHeadline(t *testing.T) {
	ge, err := Run(quickCfg("ge", 130))
	if err != nil {
		t.Fatal(err)
	}
	be, err := Run(quickCfg("be", 130))
	if err != nil {
		t.Fatal(err)
	}
	if ge.Energy >= be.Energy {
		t.Fatalf("GE energy %v should undercut BE %v", ge.Energy, be.Energy)
	}
	if ge.Quality < 0.87 {
		t.Fatalf("GE quality %v below band", ge.Quality)
	}
}

func TestDiscreteSpeedsAccepted(t *testing.T) {
	cfg := quickCfg("ge", 150)
	for s := 0.2; s <= 3.2; s += 0.2 {
		cfg.DiscreteSpeeds = append(cfg.DiscreteSpeeds, s)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality <= 0 {
		t.Fatalf("discrete quality = %v", res.Quality)
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	a, err := Run(quickCfg("ge", 154))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg("ge", 154))
	if err != nil {
		t.Fatal(err)
	}
	if a.Quality != b.Quality || a.Energy != b.Energy {
		t.Fatal("identical configs diverged")
	}
}

func TestRandomWindowMode(t *testing.T) {
	cfg := quickCfg("fdfs", 180)
	cfg.RandomWindow = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs == 0 {
		t.Fatal("no jobs under random windows")
	}
}

func TestAESFractionExposed(t *testing.T) {
	res, err := Run(quickCfg("ge", 110))
	if err != nil {
		t.Fatal(err)
	}
	if res.AESFraction <= 0.3 {
		t.Fatalf("light-load AES fraction = %v", res.AESFraction)
	}
	be, _ := Run(quickCfg("be", 110))
	if be.AESFraction != 0 {
		t.Fatalf("BE AES fraction = %v, want 0", be.AESFraction)
	}
}

func TestSpeedMomentsFinite(t *testing.T) {
	res, err := Run(quickCfg("ge-wf", 154))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.AvgSpeed) || math.IsNaN(res.SpeedVariance) || res.AvgSpeed <= 0 {
		t.Fatalf("bad speed moments: %+v", res)
	}
}

func TestExportAndReplayTrace(t *testing.T) {
	cfg := quickCfg("ge", 150)
	cfg.DurationSec = 8
	var buf bytes.Buffer
	if err := ExportTrace(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	traceJSON := buf.String()
	if !strings.Contains(traceJSON, "\"jobs\"") {
		t.Fatal("trace JSON missing jobs")
	}

	// Replay must agree with the synthetic run on the same stream.
	direct, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := RunTrace(cfg, strings.NewReader(traceJSON))
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Jobs != direct.Jobs {
		t.Fatalf("replay saw %d jobs, direct %d", replayed.Jobs, direct.Jobs)
	}
	if math.Abs(replayed.Quality-direct.Quality) > 1e-9 ||
		math.Abs(replayed.Energy-direct.Energy) > 1e-6 {
		t.Fatalf("replay diverged: %+v vs %+v", replayed, direct)
	}

	// The same trace under a different policy shares the workload.
	cfg.Scheduler = "be"
	be, err := RunTrace(cfg, strings.NewReader(traceJSON))
	if err != nil {
		t.Fatal(err)
	}
	if be.Jobs != direct.Jobs {
		t.Fatal("trace replay changed the job count across policies")
	}
	if be.Energy <= direct.Energy {
		t.Fatalf("BE energy %v should exceed GE %v on the same trace", be.Energy, direct.Energy)
	}
}

func TestRunTraceRejectsGarbage(t *testing.T) {
	cfg := quickCfg("ge", 100)
	if _, err := RunTrace(cfg, strings.NewReader("not json")); err == nil {
		t.Fatal("garbage trace accepted")
	}
	if _, err := RunTrace(cfg, strings.NewReader(`{"jobs":[{"release":2,"deadline":1,"demand":5}]}`)); err == nil {
		t.Fatal("corrupt trace accepted")
	}
}

func TestRunTraceUnknownScheduler(t *testing.T) {
	cfg := quickCfg("nope", 100)
	if _, err := RunTrace(cfg, strings.NewReader(`{"jobs":[]}`)); err == nil {
		t.Fatal("unknown scheduler accepted in RunTrace")
	}
}

func TestRunWithTimeline(t *testing.T) {
	cfg := quickCfg("ge", 154)
	var buf bytes.Buffer
	res, err := RunWithTimeline(cfg, 0.5, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,quality,power_w,load_units,waiting,aes,energy_j") {
		t.Fatalf("timeline header missing:\n%.100s", out)
	}
	if !strings.Contains(out, ",speed_c0_ghz") {
		t.Fatalf("timeline header lacks per-core speed columns:\n%.200s", out)
	}
	lines := strings.Count(out, "\n")
	// 15 simulated seconds sampled every 0.5 s → roughly 30 rows.
	if lines < 20 || lines > 60 {
		t.Fatalf("timeline rows = %d, want ~30", lines)
	}
	// The run's result must match a plain Run on the same config.
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != plain.Quality || res.Energy != plain.Energy {
		t.Fatal("timeline recording perturbed the simulation")
	}
	// Timeline must show both modes at the critical rate (the aes column
	// is the sixth field).
	sawAES, sawBQ := false, false
	for _, line := range strings.Split(out, "\n")[1:] {
		fields := strings.Split(line, ",")
		if len(fields) < 7 {
			continue
		}
		switch fields[5] {
		case "1":
			sawAES = true
		case "0":
			sawBQ = true
		}
	}
	if !sawAES || !sawBQ {
		t.Fatal("timeline never shows both AES and BQ modes at the knee")
	}
}

func TestQualityFamilies(t *testing.T) {
	for _, fam := range []string{"", "exp", "log", "pow", "linear"} {
		cfg := quickCfg("ge", 130)
		cfg.QualityFamily = fam
		if fam == "log" {
			cfg.QualityC = 0.01
		}
		if fam == "pow" {
			cfg.QualityC = 0.5
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if res.Quality < 0.5 || res.Quality > 1 {
			t.Fatalf("%s: quality = %v", fam, res.Quality)
		}
	}
	cfg := quickCfg("ge", 100)
	cfg.QualityFamily = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestLinearFamilyCutsLess(t *testing.T) {
	// With linear quality there are no diminishing returns: hitting 0.9
	// quality requires keeping ~90% of the work, so GE's energy advantage
	// over BE shrinks versus the concave default.
	exp := quickCfg("ge", 120)
	lin := exp
	lin.QualityFamily = "linear"
	expRes, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	linRes, err := Run(lin)
	if err != nil {
		t.Fatal(err)
	}
	if linRes.Energy <= expRes.Energy {
		t.Fatalf("linear quality should force more work: %v vs %v (concave)",
			linRes.Energy, expRes.Energy)
	}
}

func TestRunSeeds(t *testing.T) {
	cfg := quickCfg("ge", 140)
	cfg.DurationSec = 10
	rep, err := RunSeeds(cfg, []uint64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 5 || len(rep.Results) != 5 {
		t.Fatalf("replication runs = %d", rep.Runs)
	}
	if rep.QualityMean < 0.88 || rep.QualityMean > 0.92 {
		t.Fatalf("mean quality across seeds = %v", rep.QualityMean)
	}
	// Seed-to-seed quality variation must be small (the EXPERIMENTS.md
	// seed-robustness claim).
	if rep.QualityStd > 0.01 {
		t.Fatalf("quality std across seeds = %v, want < 0.01", rep.QualityStd)
	}
	if rep.EnergyStd <= 0 {
		t.Fatal("different seeds should produce slightly different energies")
	}
	if rep.QualityMin > rep.QualityMean || rep.QualityMax < rep.QualityMean {
		t.Fatal("min/max inconsistent with mean")
	}
	if rep.EnergyMin > rep.EnergyMean || rep.EnergyMax < rep.EnergyMean {
		t.Fatal("energy min/max inconsistent")
	}
}

func TestRunSeedsValidation(t *testing.T) {
	if _, err := RunSeeds(quickCfg("ge", 100), nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	bad := quickCfg("nope", 100)
	if _, err := RunSeeds(bad, []uint64{1}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBigLittleMachine(t *testing.T) {
	cfg := quickCfg("ge", 154)
	cfg.CoreGroups = []CoreGroup{
		{Count: 8, PowerAlpha: 5, PowerBeta: 2},                   // big
		{Count: 8, PowerAlpha: 2, PowerBeta: 2, MaxSpeedGHz: 1.6}, // little
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality < 0.85 {
		t.Fatalf("big.LITTLE quality = %v", res.Quality)
	}
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("accounting broken: %+v", res)
	}
	// The efficient little cluster should lower total energy vs a
	// homogeneous all-big machine at the same budget.
	homog := quickCfg("ge", 154)
	ref, err := Run(homog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= ref.Energy {
		t.Fatalf("big.LITTLE energy %v should undercut homogeneous %v", res.Energy, ref.Energy)
	}
}

func TestBigLittleValidation(t *testing.T) {
	cfg := quickCfg("ge", 100)
	cfg.CoreGroups = []CoreGroup{{Count: 0, PowerAlpha: 5, PowerBeta: 2}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero-count core group accepted")
	}
	cfg = quickCfg("ge", 100)
	cfg.CoreGroups = []CoreGroup{{Count: 4, PowerAlpha: -1, PowerBeta: 2}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid group model accepted")
	}
	cfg = quickCfg("ge", 100)
	cfg.CoreGroups = []CoreGroup{{Count: 16, PowerAlpha: 5, PowerBeta: 2}}
	cfg.DiscreteSpeeds = []float64{1, 2}
	if _, err := Run(cfg); err == nil {
		t.Fatal("ladder + heterogeneity accepted")
	}
}

func TestBurstyTraffic(t *testing.T) {
	cfg := quickCfg("ge", 0)
	cfg.ArrivalRate = 1 // ignored under Bursty but kept valid
	cfg.Bursty = true
	cfg.BurstHigh = 250
	cfg.BurstLow = 80
	cfg.BurstMeanHighSec = 2
	cfg.BurstMeanLowSec = 4
	cfg.DurationSec = 30
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs == 0 {
		t.Fatal("no bursty jobs")
	}
	// Mean rate ≈ (250·2+80·4)/6 ≈ 137 req/s — well within capacity, so
	// GE's compensation must keep quality near the target even through
	// 250 req/s flash crowds.
	if res.Quality < 0.85 {
		t.Fatalf("bursty-traffic quality = %v; compensation failed", res.Quality)
	}
	if int64(res.Jobs) != res.Completed+res.Expired {
		t.Fatalf("accounting broken: %+v", res)
	}
	// Invalid burst parameters must surface.
	cfg.BurstLow = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid burst config accepted")
	}
}
