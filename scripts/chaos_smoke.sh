#!/bin/sh
# End-to-end chaos smoke of the fleet tier: build geserve + gegate +
# gechaos + geload, boot three replicas with one of them behind a chaos
# proxy that black-holes 1s in for 4s, drive open-loop load through the
# gateway across the outage, and require zero client-visible failures plus
# a nonzero hedge-won counter in the gateway's metricz. SIGTERM everything
# and require clean exits. Used by `make chaos-smoke` and the CI
# chaos-smoke job.
set -eu

GATE_ADDR=${GATE_ADDR:-127.0.0.1:8370}
R1_ADDR=127.0.0.1:8381
R2_ADDR=127.0.0.1:8382
R3_ADDR=127.0.0.1:8383
CHAOS_ADDR=127.0.0.1:8391
BASE="http://$GATE_ADDR"
TMP=$(mktemp -d)

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/geserve" ./cmd/geserve
go build -o "$TMP/gegate" ./cmd/gegate
go build -o "$TMP/gechaos" ./cmd/gechaos
go build -o "$TMP/geload" ./cmd/geload

for addr in "$R1_ADDR" "$R2_ADDR" "$R3_ADDR"; do
    "$TMP/geserve" -addr "$addr" -concurrency 2 -queue 4 \
        -timeout 10s -drain-timeout 2s 2>"$TMP/geserve-$addr.log" &
    PIDS="$PIDS $!"
done

# Every replica must come up before the clock starts.
for addr in "$R1_ADDR" "$R2_ADDR" "$R3_ADDR"; do
    i=0
    until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "chaos-smoke: replica $addr never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
done
echo "chaos-smoke: 3 replicas healthy"

# The chaos proxy fronts replica 1 and goes dark at t=1s for 4s — the
# schedule clock starts when the proxy does.
"$TMP/gechaos" -listen "$CHAOS_ADDR" -target "$R1_ADDR" \
    -spec '[{"at":1,"kind":"blackhole","duration":4}]' \
    2>"$TMP/gechaos.log" &
CHAOS_PID=$!
PIDS="$PIDS $CHAOS_PID"

"$TMP/gegate" -addr "$GATE_ADDR" \
    -replicas "http://$CHAOS_ADDR,http://$R2_ADDR,http://$R3_ADDR" \
    -probe-interval 300ms -probe-timeout 500ms \
    -breaker-failures 2 -breaker-open 2s \
    -hedge-min 50ms -max-attempts 3 -retry-burst 100 -timeout 30s \
    2>"$TMP/gegate.log" &
GATE_PID=$!
PIDS="$PIDS $GATE_PID"

i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "chaos-smoke: gegate never became ready" >&2
        cat "$TMP/gegate.log" >&2 || true
        exit 1
    fi
    sleep 0.2
done
echo "chaos-smoke: gegate ready"

# ~5s of open-loop traffic spans the 1s..5s blackhole window. The gateway —
# hedges, breakers, probes — must hide the outage entirely: no shed, no
# errors at the client.
"$TMP/geload" -url "$BASE" -mode open -rate 20 -requests 100 \
    -run-duration 0.3 -retries 2 -backoff 100ms -csv >"$TMP/load.csv"
cat "$TMP/load.csv"

OK=$(awk -F, 'NR==2{print $3}' "$TMP/load.csv")
SHED=$(awk -F, 'NR==2{print $5}' "$TMP/load.csv")
ERRORS=$(awk -F, 'NR==2{print $6}' "$TMP/load.csv")
if [ "$OK" != "100" ] || [ "$SHED" != "0" ] || [ "$ERRORS" != "0" ]; then
    echo "chaos-smoke: client saw the outage: ok=$OK shed=$SHED errors=$ERRORS" >&2
    echo "--- gegate log ---" >&2
    cat "$TMP/gegate.log" >&2 || true
    echo "--- gechaos log ---" >&2
    cat "$TMP/gechaos.log" >&2 || true
    exit 1
fi
echo "chaos-smoke: 100/100 requests ok across the blackhole"

curl -fsS "$BASE/metricz?format=plain" >"$TMP/metricz"
HEDGES_WON=$(awk '$1=="counter" && $2=="hedges_won_total"{print $3}' "$TMP/metricz")
if [ -z "$HEDGES_WON" ] || [ "$HEDGES_WON" -lt 1 ]; then
    echo "chaos-smoke: hedges_won_total=$HEDGES_WON, want >= 1" >&2
    cat "$TMP/metricz" >&2
    exit 1
fi
for metric in breaker_open_total hedges_fired_total retry_budget_tokens replica0_probe_ok; do
    grep -q " $metric " "$TMP/metricz" || {
        echo "chaos-smoke: metricz missing $metric" >&2
        exit 1
    }
done
echo "chaos-smoke: metricz shows hedges_won_total=$HEDGES_WON and breaker metrics"

curl -fsS "$BASE/replicaz"

# Graceful teardown: gegate and gechaos must both exit 0 on SIGTERM.
kill -TERM "$GATE_PID"
if wait "$GATE_PID"; then
    echo "chaos-smoke: gegate drained cleanly"
else
    echo "chaos-smoke: gegate exited non-zero on SIGTERM" >&2
    exit 1
fi
kill -TERM "$CHAOS_PID"
if wait "$CHAOS_PID"; then
    echo "chaos-smoke: gechaos exited cleanly"
else
    echo "chaos-smoke: gechaos exited non-zero on SIGTERM" >&2
    exit 1
fi
echo "chaos-smoke: PASS"
