#!/bin/sh
# Fleet-simulation smoke: run the committed 10-machine chaos scenario
# (testdata/fleet_chaos.json — machines crash, partition, and degrade
# mid-run, all recovering) through gefleet under every dispatch policy, and
# require each run to finish with zero lost-forever jobs. gefleet exits
# nonzero itself when any job escapes accounting, so the policy shoot-out
# doubles as the assertion. A second run of the default policy must produce
# a byte-identical CSV row (same seed + schedule => same simulation), and a
# third run on 4 event-heap shards under the race detector must match it
# byte for byte too (the shard count is an execution knob, never a
# simulation knob). Used by `make fleet-smoke` and the CI fleet-smoke job.
set -eu

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/gefleet" ./cmd/gefleet

echo "fleet-smoke: policy shoot-out over testdata/fleet_chaos.json"
"$TMP/gefleet" -machines 10 -duration 30 \
    -chaos @testdata/fleet_chaos.json -compare

echo "fleet-smoke: determinism re-run"
"$TMP/gefleet" -machines 10 -duration 30 \
    -chaos @testdata/fleet_chaos.json -csv >"$TMP/a.csv"
"$TMP/gefleet" -machines 10 -duration 30 \
    -chaos @testdata/fleet_chaos.json -csv >"$TMP/b.csv"
if ! cmp -s "$TMP/a.csv" "$TMP/b.csv"; then
    echo "fleet-smoke: same seed + chaos schedule produced different results" >&2
    diff "$TMP/a.csv" "$TMP/b.csv" >&2 || true
    exit 1
fi
cat "$TMP/a.csv"

echo "fleet-smoke: sharded run (-shards 4) under -race"
go build -race -o "$TMP/gefleet-race" ./cmd/gefleet
"$TMP/gefleet-race" -machines 10 -duration 30 -shards 4 \
    -chaos @testdata/fleet_chaos.json -csv >"$TMP/sharded.csv"
if ! cmp -s "$TMP/a.csv" "$TMP/sharded.csv"; then
    echo "fleet-smoke: sharded run diverged from sequential" >&2
    diff "$TMP/a.csv" "$TMP/sharded.csv" >&2 || true
    exit 1
fi

CRASHES=$(awk -F, 'NR==2{print $14}' "$TMP/a.csv")
REDISP=$(awk -F, 'NR==2{print $17}' "$TMP/a.csv")
if [ "$CRASHES" != "4" ] || [ "$REDISP" -lt 1 ]; then
    echo "fleet-smoke: chaos did not land: crashes=$CRASHES redispatches=$REDISP" >&2
    exit 1
fi
echo "fleet-smoke: PASS ($CRASHES crashes, $REDISP re-dispatches, 0 lost)"
