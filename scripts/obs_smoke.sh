#!/bin/sh
# End-to-end observability smoke: build geserve + gegate + geload + gestat,
# boot two replicas and a gateway with -span-log on every tier, drive traced
# load through the gateway, and require (1) /metricz speaks Prometheus text
# on both tiers with the legacy plain format behind ?format=plain, (2)
# /timeseriez serves ring-buffer samples, (3) `gestat -n 1` renders a live
# panel, (4) after a clean SIGTERM flush the client, gateway, and server
# span logs share trace IDs — one request is one causal tree across three
# processes — and (5) `gestat -spans -trace` merges the logs into a loadable
# Chrome/Perfetto trace. Used by `make obs-smoke` and the CI obs-smoke job.
set -eu

GATE_ADDR=${GATE_ADDR:-127.0.0.1:8372}
R1_ADDR=127.0.0.1:8386
R2_ADDR=127.0.0.1:8387
BASE="http://$GATE_ADDR"
TMP=$(mktemp -d)

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/geserve" ./cmd/geserve
go build -o "$TMP/gegate" ./cmd/gegate
go build -o "$TMP/geload" ./cmd/geload
go build -o "$TMP/gestat" ./cmd/gestat

for addr in "$R1_ADDR" "$R2_ADDR"; do
    "$TMP/geserve" -addr "$addr" -concurrency 2 -queue 8 \
        -timeout 10s -drain-timeout 2s \
        -span-log "$TMP/geserve-$addr.spans.jsonl" \
        2>"$TMP/geserve-$addr.log" &
    PIDS="$PIDS $!"
done
for addr in "$R1_ADDR" "$R2_ADDR"; do
    i=0
    until curl -fsS "http://$addr/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "obs-smoke: replica $addr never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
done
echo "obs-smoke: 2 replicas healthy"

"$TMP/gegate" -addr "$GATE_ADDR" \
    -replicas "http://$R1_ADDR,http://$R2_ADDR" \
    -probe-interval 300ms -hedge-min 50ms -timeout 30s \
    -span-log "$TMP/gegate.spans.jsonl" \
    2>"$TMP/gegate.log" &
GATE_PID=$!
PIDS="$PIDS $GATE_PID"
i=0
until curl -fsS "$BASE/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "obs-smoke: gegate never became ready" >&2
        cat "$TMP/gegate.log" >&2 || true
        exit 1
    fi
    sleep 0.2
done
echo "obs-smoke: gegate ready"

# Traced load: every request originates a client span whose context rides
# the X-GE-Trace-Id header through the gateway into a replica.
"$TMP/geload" -url "$BASE" -mode closed -concurrency 4 -requests 20 \
    -run-duration 0.2 -span-log "$TMP/geload.spans.jsonl" -csv >"$TMP/load.csv"
cat "$TMP/load.csv"
OK=$(awk -F, 'NR==2{print $3}' "$TMP/load.csv")
if [ "$OK" != "20" ]; then
    echo "obs-smoke: only $OK/20 requests succeeded" >&2
    cat "$TMP/gegate.log" >&2 || true
    exit 1
fi
echo "obs-smoke: 20/20 traced requests ok"

# Prometheus exposition on both tiers; the legacy plain format stays
# reachable behind ?format=plain.
for url in "$BASE" "http://$R1_ADDR"; do
    curl -fsS "$url/metricz" >"$TMP/prom"
    grep -q "^# TYPE " "$TMP/prom" || {
        echo "obs-smoke: $url/metricz is not Prometheus text" >&2
        cat "$TMP/prom" >&2
        exit 1
    }
    curl -fsS "$url/metricz?format=plain" | grep -q "^counter " || {
        echo "obs-smoke: $url/metricz?format=plain lost the legacy format" >&2
        exit 1
    }
done
echo "obs-smoke: /metricz speaks Prometheus on gegate and geserve"

# Live telemetry: both tiers serve ring-buffer samples as JSON.
sleep 1.2 # let at least one sampler tick land
for url in "$BASE" "http://$R1_ADDR"; do
    curl -fsS "$url/timeseriez" >"$TMP/ts.json"
    grep -q '"series"' "$TMP/ts.json" || {
        echo "obs-smoke: $url/timeseriez returned no series" >&2
        cat "$TMP/ts.json" >&2
        exit 1
    }
done
grep -q '"t":\[' "$TMP/ts.json" || {
    echo "obs-smoke: timeseriez has no samples after 1.2s" >&2
    cat "$TMP/ts.json" >&2
    exit 1
}
echo "obs-smoke: /timeseriez serves samples on gegate and geserve"

# gestat one-shot panel against both tiers.
"$TMP/gestat" -targets "$BASE,http://$R1_ADDR" -n 1 -plain >"$TMP/gestat.out"
grep -q "$GATE_ADDR" "$TMP/gestat.out" || {
    echo "obs-smoke: gestat panel missing the gateway target" >&2
    cat "$TMP/gestat.out" >&2
    exit 1
}
echo "obs-smoke: gestat rendered a live panel"

# Graceful teardown: SIGTERM must exit 0 AND flush every span log.
kill -TERM "$GATE_PID"
if ! wait "$GATE_PID"; then
    echo "obs-smoke: gegate exited non-zero on SIGTERM" >&2
    exit 1
fi
for pid in $PIDS; do
    [ "$pid" = "$GATE_PID" ] && continue
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" || {
        echo "obs-smoke: geserve exited non-zero on SIGTERM" >&2
        exit 1
    }
done
PIDS=""
echo "obs-smoke: clean SIGTERM teardown"

# Tracing acceptance: trace IDs originated by the client must appear in the
# gateway's span log AND in a replica's — three processes, one causal tree
# per request.
for f in "$TMP/geload.spans.jsonl" "$TMP/gegate.spans.jsonl"; do
    [ -s "$f" ] || {
        echo "obs-smoke: span log $f is empty" >&2
        exit 1
    }
done
cat "$TMP/geserve-$R1_ADDR.spans.jsonl" "$TMP/geserve-$R2_ADDR.spans.jsonl" \
    >"$TMP/geserve.spans.jsonl"
SHARED=0
for trace in $(sed -n 's/.*"trace":"\([0-9a-f]*\)".*/\1/p' "$TMP/geload.spans.jsonl" | sort -u); do
    if grep -q "\"trace\":\"$trace\"" "$TMP/gegate.spans.jsonl" &&
        grep -q "\"trace\":\"$trace\"" "$TMP/geserve.spans.jsonl"; then
        SHARED=$((SHARED + 1))
    fi
done
if [ "$SHARED" -lt 1 ]; then
    echo "obs-smoke: no client trace ID found in both gegate and geserve span logs" >&2
    head -3 "$TMP/geload.spans.jsonl" "$TMP/gegate.spans.jsonl" "$TMP/geserve.spans.jsonl" >&2 || true
    exit 1
fi
echo "obs-smoke: $SHARED client traces continue through gegate and geserve"

# Merge the logs from all three tiers into one Chrome/Perfetto trace.
"$TMP/gestat" \
    -spans "$TMP/geload.spans.jsonl,$TMP/gegate.spans.jsonl,$TMP/geserve-$R1_ADDR.spans.jsonl,$TMP/geserve-$R2_ADDR.spans.jsonl" \
    -trace "$TMP/trace.json"
grep -q '"traceEvents"' "$TMP/trace.json" || {
    echo "obs-smoke: merged trace has no traceEvents" >&2
    exit 1
}
grep -q '"ph":"X"' "$TMP/trace.json" || {
    echo "obs-smoke: merged trace has no slices" >&2
    exit 1
}
echo "obs-smoke: merged $(wc -c <"$TMP/trace.json") bytes of Chrome trace from 4 span logs"
echo "obs-smoke: PASS"
