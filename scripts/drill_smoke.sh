#!/bin/sh
# Process-level crash-recovery smoke: gedrill boots a 3-replica governed
# geserve fleet behind gegate, drives seeded open-loop traffic, and runs
# the deterministic fault schedule for seed 7 — SIGKILL one replica,
# SIGSTOP/SIGCONT another — then audits the invariants:
#
#   - zero acknowledged-then-lost requests (gateway acks vs replica journals)
#   - journal orphans within the gateway's retry/hedge/error budget
#   - the killed replica rejoins within the bound and re-enters rotation
#     through the slow-start ramp (slowstart_enter_total >= kills)
#   - recovery-window goodput >= 90% of the pre-fault baseline
#   - mean quality of acked requests >= Q_GE - 0.05 (governed fleet)
#
# The schedule is a pure function of the seed, so reruns exercise the same
# fault sequence. On failure gedrill keeps journals, replica logs, and the
# JSON report in WORKDIR for the CI artifact upload.
#
# Used by `make drill-smoke` and the CI drill-smoke job.
set -eu

SEED=${SEED:-7}
WORKDIR=${WORKDIR:-drill-artifacts}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/geserve" ./cmd/geserve
go build -o "$TMP/gegate" ./cmd/gegate
go build -o "$TMP/gedrill" ./cmd/gedrill

rm -rf "$WORKDIR"
mkdir -p "$WORKDIR"

# 8s horizon: kill + pause, faults done by 5.3s, recovery audited over the
# final 2s. Rolling restarts need >= 12s and are covered by the package's
# own end-to-end test; the smoke stays short.
if "$TMP/gedrill" -seed "$SEED" -replicas 3 -rate 40 -duration 8s \
    -governed -geserve "$TMP/geserve" -gegate "$TMP/gegate" \
    -workdir "$WORKDIR" -rejoin-bound 5s -goodput-frac 0.9 \
    -json "$WORKDIR/report.json"; then
    echo "drill-smoke: PASS (seed $SEED)"
    rm -rf "$WORKDIR"
else
    echo "drill-smoke: FAIL — artifacts in $WORKDIR" >&2
    exit 1
fi
