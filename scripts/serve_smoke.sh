#!/bin/sh
# End-to-end smoke test of the serving layer: build geserve + geload, boot
# the daemon, probe health/readiness, run one simulation, put it briefly
# under load, then SIGTERM it and require a clean (exit 0) graceful drain.
# Used by `make smoke` and the CI serve-smoke job.
set -eu

ADDR=${ADDR:-127.0.0.1:8377}
BASE="http://$ADDR"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/geserve" ./cmd/geserve
go build -o "$TMP/geload" ./cmd/geload

"$TMP/geserve" -addr "$ADDR" -concurrency 2 -queue 2 \
    -timeout 10s -drain-timeout 2s &
SERVE_PID=$!

# Wait for the listener (up to ~10 s).
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "smoke: geserve never became healthy" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.2
done
echo "smoke: healthz ok"

curl -fsS "$BASE/readyz" | grep -q '^ready' || {
    echo "smoke: readyz not ready" >&2
    exit 1
}
echo "smoke: readyz ok"

# One real simulation must come back complete (not cancelled).
RESP=$(curl -fsS -d '{"Scheduler":"ge","ArrivalRate":154,"DurationSec":5}' \
    "$BASE/v1/run")
echo "$RESP" | grep -q '"Jobs":' || {
    echo "smoke: run response carries no result: $RESP" >&2
    exit 1
}
echo "$RESP" | grep -q '"Cancelled":true' && {
    echo "smoke: uncontended run came back cancelled: $RESP" >&2
    exit 1
}
echo "smoke: run ok"

# Brief closed-loop overload; geload exits 0 as long as requests resolve
# (admitted or cleanly shed).
"$TMP/geload" -url "$BASE" -mode closed -concurrency 6 -requests 24 \
    -run-duration 10 -retries 1 -backoff 100ms
echo "smoke: load ok"

# Graceful drain: SIGTERM must produce exit 0 with no stragglers.
kill -TERM "$SERVE_PID"
if wait "$SERVE_PID"; then
    echo "smoke: clean drain, exit 0"
else
    echo "smoke: geserve exited non-zero on SIGTERM" >&2
    exit 1
fi
