#!/bin/sh
# Capture the hot-path benchmark baseline: run the event-kernel
# micro-benchmarks, the end-to-end quantum benchmarks, and the fleet
# dispatch/chaos benchmarks COUNT times each,
# fold them to best-observation JSON with cmd/gebench, and write OUT
# (BENCH_BASELINE.json by default — the committed baseline `make
# bench-check` and the CI bench job gate against).
#
#   make bench-baseline            # refresh the committed baseline
#   OUT=cand.json sh scripts/bench_baseline.sh   # candidate for gating
set -eu

COUNT=${COUNT:-5}
OUT=${OUT:-BENCH_BASELINE.json}
BENCHTIME=${BENCHTIME:-1s}
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

go test -run '^$' -bench 'BenchmarkKernel' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/sim/ \
    | tee "$TMP/bench.txt"
go test -run '^$' -bench 'BenchmarkQuantum' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . \
    | tee -a "$TMP/bench.txt"
go test -run '^$' -bench 'BenchmarkFleet' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" . \
    | tee -a "$TMP/bench.txt"
go test -run '^$' -bench 'BenchmarkSpan|BenchmarkDecision|BenchmarkSampler' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/obs/ \
    | tee -a "$TMP/bench.txt"
go test -run '^$' -bench 'BenchmarkGovernor' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/governor/ \
    | tee -a "$TMP/bench.txt"
go test -run '^$' -bench 'BenchmarkGateway' -benchmem \
    -benchtime "$BENCHTIME" -count "$COUNT" ./internal/gateway/ \
    | tee -a "$TMP/bench.txt"

# Preserve the committed baseline's "previous" section (the pre-optimization
# numbers) when refreshing BENCH_BASELINE.json in place.
NOTE="best of $COUNT runs, benchtime $BENCHTIME; see DESIGN.md §11"
if [ -f "$OUT" ]; then
    go run ./cmd/gebench -note "$NOTE" -merge-previous "$OUT" \
        < "$TMP/bench.txt" > "$TMP/new.json"
else
    go run ./cmd/gebench -note "$NOTE" < "$TMP/bench.txt" > "$TMP/new.json"
fi
mv "$TMP/new.json" "$OUT"
echo "wrote $OUT"
