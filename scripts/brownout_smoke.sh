#!/bin/sh
# End-to-end brownout smoke: real traffic at ~2x capacity through
# gegate -> governed geserve replicas must brown out, not fall over.
#
# Phase A: two governed replicas behind a quality-aware gateway take a
# closed-loop load at twice their worker count. Gate: zero client-visible
# failures, achieved batch quality within 0.05 of Q_GE, at least one
# governor cut actually happened (the brownout was real, not headroom).
#
# Phase B: one replica with a starvation budget is hit directly. Gate: it
# sheds (429), every shed carries a parseable positive Retry-After derived
# from the drain rate (no_hint == 0), and nothing errors.
#
# Used by `make brownout-smoke` and the CI brownout-smoke job.
set -eu

ADDR1=${ADDR1:-127.0.0.1:8381}
ADDR2=${ADDR2:-127.0.0.1:8382}
GATE=${GATE:-127.0.0.1:8380}
QGE=0.9
TMP=$(mktemp -d)
PIDS=""
trap 'kill $PIDS 2>/dev/null; rm -rf "$TMP"' EXIT

go build -o "$TMP/geserve" ./cmd/geserve
go build -o "$TMP/gegate" ./cmd/gegate
go build -o "$TMP/geload" ./cmd/geload

wait_healthy() {
    i=0
    until curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "brownout-smoke: $1 never became healthy" >&2
            exit 1
        fi
        sleep 0.2
    done
}

# csv_field FILE N prints column N of the data row of a geload -csv report.
csv_field() {
    awk -F, -v n="$2" 'NR==2{print $n}' "$1"
}

echo "brownout-smoke: phase A — governed fleet at 2x capacity"
for ADDR in "$ADDR1" "$ADDR2"; do
    "$TMP/geserve" -addr "$ADDR" -concurrency 2 -queue 4 \
        -timeout 15s -drain-timeout 2s \
        -governor -governor-budget 1.5 -governor-quantum 50ms \
        -governor-qge "$QGE" -governor-nominal 500ms -governor-window 2s \
        -decision-log "$TMP/decisions-$ADDR.jsonl" 2>"$TMP/serve-$ADDR.log" &
    PIDS="$PIDS $!"
done
wait_healthy "$ADDR1"
wait_healthy "$ADDR2"

"$TMP/gegate" -addr "$GATE" -replicas "http://$ADDR1,http://$ADDR2" \
    -quality-aware -no-hedge -probe-interval 200ms 2>"$TMP/gate.log" &
PIDS="$PIDS $!"
wait_healthy "$GATE"

curl -fsS "http://$ADDR1/readyz" | grep -q '^ready state=' || {
    echo "brownout-smoke: governed readyz missing state" >&2
    exit 1
}

# 2x capacity: 8 closed-loop workers against 2 replicas x 2 slots.
"$TMP/geload" -url "http://$GATE" -mode closed -concurrency 8 -requests 40 \
    -run-duration 100 -retries 4 -backoff 100ms -csv >"$TMP/loadA.csv"
sed -n 2p "$TMP/loadA.csv"

ERRORS=$(csv_field "$TMP/loadA.csv" 6)
NOHINT=$(csv_field "$TMP/loadA.csv" 8)
OK=$(csv_field "$TMP/loadA.csv" 3)
QMEAN=$(csv_field "$TMP/loadA.csv" 19)
[ "$ERRORS" = "0" ] || {
    echo "brownout-smoke: phase A saw $ERRORS client-visible failures, want 0" >&2
    exit 1
}
[ "$NOHINT" = "0" ] || {
    echo "brownout-smoke: phase A saw $NOHINT hintless sheds, want 0" >&2
    exit 1
}
[ "$OK" -gt 0 ] || {
    echo "brownout-smoke: phase A admitted nothing" >&2
    exit 1
}
awk -v q="$QMEAN" -v qge="$QGE" \
    'BEGIN { exit !(q >= qge - 0.05) }' || {
    echo "brownout-smoke: phase A batch quality $QMEAN below Q_GE - 0.05" >&2
    exit 1
}
CUTS=0
for ADDR in "$ADDR1" "$ADDR2"; do
    C=$(curl -fsS "http://$ADDR/metricz?format=plain" \
        | awk '$2 == "governor_cut_total" {print $3}')
    CUTS=$((CUTS + ${C:-0}))
done
[ "$CUTS" -gt 0 ] || {
    echo "brownout-smoke: no governor cuts under 2x load — overload never bit" >&2
    exit 1
}
echo "brownout-smoke: phase A ok (ok=$OK q_mean=$QMEAN cuts=$CUTS)"

kill $PIDS 2>/dev/null
wait 2>/dev/null || true
PIDS=""

echo "brownout-smoke: phase B — starvation budget must shed with hints"
"$TMP/geserve" -addr "$ADDR1" -concurrency 2 -queue 2 \
    -timeout 15s -drain-timeout 2s \
    -governor -governor-budget 0.05 -governor-quantum 20ms \
    -governor-qge "$QGE" -governor-nominal 500ms 2>"$TMP/serve-B.log" &
PIDS="$PIDS $!"
wait_healthy "$ADDR1"

"$TMP/geload" -url "http://$ADDR1" -mode closed -concurrency 4 -requests 16 \
    -run-duration 100 -retries 1 -backoff 100ms -csv >"$TMP/loadB.csv"
sed -n 2p "$TMP/loadB.csv"

SHED=$(csv_field "$TMP/loadB.csv" 5)
ERRORS=$(csv_field "$TMP/loadB.csv" 6)
NOHINT=$(csv_field "$TMP/loadB.csv" 8)
BSHED=$(curl -fsS "http://$ADDR1/metricz?format=plain" \
    | awk '$2 == "brownout_shed_total" {print $3}')
[ "$ERRORS" = "0" ] || {
    echo "brownout-smoke: phase B saw $ERRORS errors, want 0" >&2
    exit 1
}
[ "${BSHED:-0}" -gt 0 ] || {
    echo "brownout-smoke: phase B never shed (brownout_shed_total=0)" >&2
    exit 1
}
[ "$NOHINT" = "0" ] || {
    echo "brownout-smoke: phase B saw $NOHINT sheds without Retry-After, want 0" >&2
    exit 1
}
# A shedding replica must also tell probes via readyz.
READY=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR1/readyz")
echo "brownout-smoke: phase B ok (geload_shed=$SHED brownout_shed_total=$BSHED readyz=$READY)"

kill $PIDS 2>/dev/null
wait 2>/dev/null || true
PIDS=""
echo "brownout-smoke: all phases passed"
