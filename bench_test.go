// Per-figure benchmarks: one testing.B target per table/figure of the
// paper's evaluation section. Each benchmark regenerates its figure on a
// reduced (but shape-preserving) scale and reports the figure's key
// quantities via b.ReportMetric, so
//
//	go test -bench=Fig -benchmem
//
// prints a compact reproduction of the whole evaluation. cmd/gesweep runs
// the same experiments at full paper scale (600 s per point).
package goodenough

import (
	"testing"

	"goodenough/internal/experiments"
	"goodenough/internal/plot"
)

// benchSettings keeps each iteration around a second: short runs, coarse
// rate axis. Shapes (orderings, crossovers) survive this reduction; the
// absolute numbers are what gesweep reproduces at full scale.
func benchSettings(rates ...float64) experiments.Settings {
	s := experiments.DefaultSettings()
	s.Duration = 5
	s.Rates = rates
	s.Workers = 1
	return s
}

// lastY extracts series label's y at the given x (0 when absent).
func lastY(f plot.Figure, label string, x float64) float64 {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for i := range s.X {
			if s.X[i] == x {
				return s.Y[i]
			}
		}
	}
	return 0
}

func BenchmarkFig01AESFraction(b *testing.B) {
	s := benchSettings(100, 150, 200)
	var light, heavy float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Fig1(s)
		if err != nil {
			b.Fatal(err)
		}
		light = lastY(fig, "GE", 100)
		heavy = lastY(fig, "GE", 200)
	}
	b.ReportMetric(light, "aes_frac@100")
	b.ReportMetric(heavy, "aes_frac@200")
}

func BenchmarkFig02JobCutting(b *testing.B) {
	var q float64
	for i := 0; i < b.N; i++ {
		_, res := experiments.Fig2(0.9)
		q = res.Quality
	}
	b.ReportMetric(q, "batch_quality")
}

func BenchmarkFig03Schedulers(b *testing.B) {
	s := benchSettings(110, 150)
	var saving, geQ float64
	for i := 0; i < b.N; i++ {
		qf, ef, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		geQ = lastY(qf, "GE", 150)
		sv, _, err := experiments.HeadlineSaving(ef)
		if err != nil {
			b.Fatal(err)
		}
		saving = sv
	}
	b.ReportMetric(geQ, "ge_quality@150")
	b.ReportMetric(saving*100, "ge_vs_be_saving_%")
}

func BenchmarkFig04RandomDeadlines(b *testing.B) {
	s := benchSettings(200)
	var fdfs, fcfs float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig4(s)
		if err != nil {
			b.Fatal(err)
		}
		fdfs = lastY(qf, "FDFS", 200)
		fcfs = lastY(qf, "FCFS", 200)
	}
	b.ReportMetric(fdfs, "fdfs_quality@200")
	b.ReportMetric(fcfs, "fcfs_quality@200")
}

func BenchmarkFig05Compensation(b *testing.B) {
	s := benchSettings(175)
	var comp, nocomp float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig5(s)
		if err != nil {
			b.Fatal(err)
		}
		comp = lastY(qf, "Compensation", 175)
		nocomp = lastY(qf, "No-Compensation", 175)
	}
	b.ReportMetric(comp, "comp_quality@175")
	b.ReportMetric(nocomp, "nocomp_quality@175")
}

func BenchmarkFig06SpeedVariance(b *testing.B) {
	s := benchSettings(110)
	var wf, es float64
	for i := 0; i < b.N; i++ {
		_, vf, err := experiments.Fig6(s)
		if err != nil {
			b.Fatal(err)
		}
		wf = lastY(vf, "Water-Filling", 110)
		es = lastY(vf, "Equal-Sharing", 110)
	}
	b.ReportMetric(wf, "wf_speed_var@110")
	b.ReportMetric(es, "es_speed_var@110")
}

func BenchmarkFig07PowerPolicies(b *testing.B) {
	s := benchSettings(110, 185)
	var esSave, wfHeavyQ float64
	for i := 0; i < b.N; i++ {
		qf, ef, err := experiments.Fig7(s)
		if err != nil {
			b.Fatal(err)
		}
		wfE := lastY(ef, "Water-Filling", 110)
		esE := lastY(ef, "Equal-Sharing", 110)
		if wfE > 0 {
			esSave = (1 - esE/wfE) * 100
		}
		wfHeavyQ = lastY(qf, "Water-Filling", 185)
	}
	b.ReportMetric(esSave, "es_saving_%@110")
	b.ReportMetric(wfHeavyQ, "wf_quality@185")
}

func BenchmarkFig08ControlPolicies(b *testing.B) {
	s := benchSettings(130)
	var ge, bep, bes float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		ge = lastY(qf, "GE", 130)
		bep = lastY(qf, "BE-P", 130)
		bes = lastY(qf, "BE-S", 130)
	}
	b.ReportMetric(ge, "ge_quality@130")
	b.ReportMetric(bep, "bep_quality@130")
	b.ReportMetric(bes, "bes_quality@130")
}

func BenchmarkFig09Concavity(b *testing.B) {
	s := benchSettings(210)
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		lo = lastY(qf, "c = 0.0005", 210)
		hi = lastY(qf, "c = 0.009", 210)
	}
	b.ReportMetric(lo, "quality_c0.0005@210")
	b.ReportMetric(hi, "quality_c0.009@210")
}

func BenchmarkFig10PowerBudget(b *testing.B) {
	s := benchSettings(200)
	var q80, q480 float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig10(s)
		if err != nil {
			b.Fatal(err)
		}
		q80 = lastY(qf, "budget = 80", 200)
		q480 = lastY(qf, "budget = 480", 200)
	}
	b.ReportMetric(q80, "quality_80W@200")
	b.ReportMetric(q480, "quality_480W@200")
}

func BenchmarkFig11CoreCount(b *testing.B) {
	s := benchSettings(154)
	var q1, q64, e1, e64 float64
	for i := 0; i < b.N; i++ {
		qf, ef, err := experiments.Fig11(s)
		if err != nil {
			b.Fatal(err)
		}
		q1 = lastY(qf, "GE", 0)
		q64 = lastY(qf, "GE", 6)
		e1 = lastY(ef, "GE", 0)
		e64 = lastY(ef, "GE", 6)
	}
	b.ReportMetric(q1, "quality_1core")
	b.ReportMetric(q64, "quality_64core")
	if e64 > 0 {
		b.ReportMetric(e1/e64, "energy_ratio_1v64")
	}
}

func BenchmarkFig12DiscreteSpeed(b *testing.B) {
	s := benchSettings(150)
	var dq, cq float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		cq = lastY(qf, "Continuous Speed", 150)
		dq = lastY(qf, "Discrete Speed", 150)
	}
	b.ReportMetric(cq, "continuous_quality@150")
	b.ReportMetric(dq, "discrete_quality@150")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// seconds per wall second for a GE run at the critical load.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.DurationSec = 10
	cfg.ArrivalRate = 154
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches: the design choices DESIGN.md calls out ---

func BenchmarkAblationAssignment(b *testing.B) {
	s := benchSettings(150)
	var crr, rr float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.AblationAssignment(s)
		if err != nil {
			b.Fatal(err)
		}
		crr = lastY(qf, "C-RR", 150)
		rr = lastY(qf, "RR", 150)
	}
	b.ReportMetric(crr, "crr_quality@150")
	b.ReportMetric(rr, "rr_quality@150")
}

func BenchmarkAblationHybrid(b *testing.B) {
	s := benchSettings(110, 185)
	var lightSave, heavyQ float64
	for i := 0; i < b.N; i++ {
		qf, ef, err := experiments.AblationHybrid(s)
		if err != nil {
			b.Fatal(err)
		}
		wf := lastY(ef, "Fixed-WF", 110)
		hy := lastY(ef, "Hybrid", 110)
		if wf > 0 {
			lightSave = (1 - hy/wf) * 100
		}
		heavyQ = lastY(qf, "Hybrid", 185)
	}
	b.ReportMetric(lightSave, "hybrid_saving_%@110")
	b.ReportMetric(heavyQ, "hybrid_quality@185")
}

func BenchmarkAblationMonitorWindow(b *testing.B) {
	s := benchSettings(160)
	var cum, win float64
	for i := 0; i < b.N; i++ {
		qf, _, err := experiments.AblationMonitorWindow(s, 5)
		if err != nil {
			b.Fatal(err)
		}
		cum = lastY(qf, "Cumulative", 160)
		win = lastY(qf, "Windowed", 160)
	}
	b.ReportMetric(cum, "cumulative_quality@160")
	b.ReportMetric(win, "windowed_quality@160")
}

func BenchmarkAblationStaticPower(b *testing.B) {
	s := benchSettings(150)
	var bestExp float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.AblationStaticPower(s, 10)
		if err != nil {
			b.Fatal(err)
		}
		// Find the energy-optimal core count under static power.
		best := -1.0
		for _, series := range fig.Series {
			if series.Label == "dynamic only" {
				continue
			}
			for k := range series.X {
				if best < 0 || series.Y[k] < best {
					best = series.Y[k]
					bestExp = series.X[k]
				}
			}
		}
	}
	b.ReportMetric(bestExp, "optimal_log2_cores")
}

func BenchmarkExtLatency(b *testing.B) {
	s := benchSettings(130)
	var ge, be float64
	for i := 0; i < b.N; i++ {
		m, _, err := experiments.ExtLatency(s)
		if err != nil {
			b.Fatal(err)
		}
		ge = lastY(m, "GE", 130)
		be = lastY(m, "BE", 130)
	}
	b.ReportMetric(ge, "ge_mean_resp_ms@130")
	b.ReportMetric(be, "be_mean_resp_ms@130")
}

func BenchmarkExtManyCore(b *testing.B) {
	s := benchSettings(154)
	var q256 float64
	for i := 0; i < b.N; i++ {
		q, _, err := experiments.ExtManyCore(s)
		if err != nil {
			b.Fatal(err)
		}
		q256 = lastY(q, "GE", 8)
	}
	b.ReportMetric(q256, "quality_256cores")
}

func BenchmarkExtBigLittle(b *testing.B) {
	s := benchSettings(130)
	var saving float64
	for i := 0; i < b.N; i++ {
		_, e, err := experiments.ExtBigLittle(s)
		if err != nil {
			b.Fatal(err)
		}
		ho := lastY(e, "Homogeneous", 130)
		he := lastY(e, "big.LITTLE", 130)
		if ho > 0 {
			saving = (1 - he/ho) * 100
		}
	}
	b.ReportMetric(saving, "biglittle_saving_%@130")
}
