package goodenough

import (
	"fmt"
	"io"

	"goodenough/internal/cluster"
	"goodenough/internal/faults"
	"goodenough/internal/obs"
	"goodenough/internal/sched"
)

// FleetConfig describes a fleet simulation: N identical machines — each
// running the embedded single-machine Config — behind a global dispatcher,
// with optional machine-level chaos (crashes, partitions, degradations).
//
// The embedded Config supplies the per-machine hardware, the scheduler, and
// the workload; ArrivalRate is the fleet-wide request rate that the
// dispatcher splits across machines. Per-core fault fields (Faults,
// FaultMTBFSec/FaultMTTRSec) are not supported at fleet scale — machine
// faults are the unit of failure here; setting them is a configuration
// error.
type FleetConfig struct {
	Config

	// Machines is the fleet size N.
	Machines int
	// Dispatch selects the routing policy: "rr" (round-robin),
	// "least-loaded", "p2c" (power-of-k-choices over an idle-machine
	// heap), or "ideal" (an omniscient baseline that sees true degraded
	// capacity — the routing regret yardstick).
	Dispatch string
	// ChoicesK is the sample size for "p2c" (values < 2 default to 2).
	ChoicesK int
	// MachineFaults lists deterministic machine fault windows. Windows on
	// the same machine must not overlap and onsets must fall inside
	// [0, DurationSec).
	MachineFaults []MachineFaultSpec
	// MachineMTBFSec and MachineMTTRSec, when both positive, generate a
	// reproducible random crash/recover schedule instead: each machine
	// fails and recovers as an independent renewal process seeded from
	// Seed. Ignored when MachineFaults is set.
	MachineMTBFSec float64
	MachineMTTRSec float64
	// RedispatchLimit caps how many times one job is re-routed after
	// machine faults before it is dropped (0 means the default, 3).
	RedispatchLimit int
	// Shards is the worker-shard count K: machines are partitioned into K
	// contiguous shards, each advancing on a private event heap between
	// global dispatcher barriers. 0 auto-sizes to min(GOMAXPROCS,
	// Machines/8) with a floor of one; 1 is the sequential path. Results
	// and event streams are byte-identical for every K.
	Shards int
}

// MachineFaultSpec describes one machine fault window (FleetConfig.
// MachineFaults).
type MachineFaultSpec struct {
	// AtSec is the onset time in seconds.
	AtSec float64
	// Kind selects the fault: "crash" (all cores halt, in-flight progress
	// is wiped, queued jobs are re-dispatched), "partition" (the machine
	// keeps serving but receives no new work), or "slow" (the machine
	// degrades to Factor of its power budget).
	Kind string
	// Machine is the target machine index.
	Machine int
	// DurationSec, when positive, recovers the fault at AtSec+DurationSec;
	// zero makes it permanent.
	DurationSec float64
	// Factor is the budget multiplier in (0,1) for "slow".
	Factor float64
}

// DefaultFleetConfig returns a 4-machine fleet of the paper's §IV-B machines
// under power-of-2-choices dispatch, with the fleet-wide arrival rate scaled
// to keep each machine near the single-machine critical load.
func DefaultFleetConfig() FleetConfig {
	fc := FleetConfig{
		Config:   DefaultConfig(),
		Machines: 4,
		Dispatch: "p2c",
		ChoicesK: 2,
	}
	fc.ArrivalRate = 154 * float64(fc.Machines)
	return fc
}

// FleetMachineResult summarizes one machine of a fleet run.
type FleetMachineResult struct {
	// Energy is the machine's dynamic energy in joules.
	Energy float64
	// Quality is the batch quality over jobs finalized on this machine.
	Quality float64
	// Completed and Expired count jobs finalized on this machine.
	Completed int64
	Expired   int64
	// Crashes counts machine-level crashes; DownTime is the total time the
	// machine spent crashed.
	Crashes  int64
	DownTime float64
	// AESFraction is the machine's share of time in AES mode.
	AESFraction float64
	// Dispatches and Redispatches count jobs routed (and fault re-routed)
	// to this machine — the per-machine decision summary behind
	// gefleet -report.
	Dispatches   int64
	Redispatches int64
}

// FleetResult reports what one fleet simulation achieved.
type FleetResult struct {
	// Dispatch and Scheduler name the routing and per-machine policies.
	Dispatch  string
	Scheduler string
	// Machines is the fleet size.
	Machines int
	// Jobs counts generated requests. Every job is finalized exactly once
	// (completed, expired, or dropped at the re-dispatch limit);
	// LostForever counts jobs that escaped accounting and must be zero.
	Jobs        int
	Completed   int64
	Expired     int64
	Dropped     int64
	LostForever int
	// Quality is Σf(processed)/Σf(demand) over every generated job.
	Quality float64
	// Energy totals dynamic energy across the fleet; AESEnergy and
	// BQEnergy split it by execution mode.
	Energy    float64
	AESEnergy float64
	BQEnergy  float64
	// AESFraction is the machine-time-weighted AES fraction.
	AESFraction float64
	// MeanResponse, P95Response, P99Response summarize completed jobs'
	// response times in seconds.
	MeanResponse float64
	P95Response  float64
	P99Response  float64
	// Crashes, Partitions, Degrades count machine fault onsets that took
	// effect; Redispatches counts fault-displaced jobs re-routed; LostWork
	// is the in-flight processing (units) wiped by crashes;
	// PendingExpired counts jobs that died parked at the dispatcher while
	// no machine was reachable.
	Crashes        int64
	Partitions     int64
	Degrades       int64
	Redispatches   int64
	LostWork       float64
	PendingExpired int64
	// Availability is the time-weighted fraction of machine-time up.
	Availability float64
	// SimTime is the simulated span in seconds.
	SimTime float64
	// Shards is the effective worker-shard count; ShardEvents and
	// ShardMachines report per-shard delivered-event totals and machine
	// counts. These describe the execution layout only — every other field
	// is identical for every shard count.
	Shards        int
	ShardEvents   []int64
	ShardMachines []int
	// PerMachine holds one entry per machine, in index order.
	PerMachine []FleetMachineResult
}

// DispatchPolicies lists the accepted FleetConfig.Dispatch names.
func DispatchPolicies() []string { return cluster.Policies() }

// RunFleet executes one fleet simulation described by fc.
func RunFleet(fc FleetConfig) (FleetResult, error) {
	return RunFleetWithOptions(fc, RunOptions{})
}

// RunFleetWithOptions is RunFleet with observability sinks attached. Events,
// Trace, Report, and Observer apply as in RunWithOptions, with per-core
// events remapped to globally unique core IDs (machine*cores + core) and
// fleet-level events (dispatch, re-dispatch, machine health) carrying the
// machine index in the core field. Timeline recording is a single-machine
// facility and is not supported here.
func RunFleetWithOptions(fc FleetConfig, opts RunOptions) (FleetResult, error) {
	if opts.Timeline != nil {
		return FleetResult{}, fmt.Errorf("goodenough: fleet runs do not support timeline recording")
	}
	ccfg, err := fc.lower()
	if err != nil {
		return FleetResult{}, err
	}
	var sinks []obs.Observer
	var events *obs.JSONL
	if opts.Events != nil {
		events = obs.NewJSONL(opts.Events)
		sinks = append(sinks, events)
	}
	var tracer *obs.Tracer
	if opts.Trace != nil {
		tracer = obs.NewTracer(opts.Trace, ccfg.Machines*ccfg.Node.Cores)
		sinks = append(sinks, tracer)
	}
	var col *obs.Collector
	if opts.Report != nil {
		col = obs.NewCollector()
		sinks = append(sinks, col)
	}
	sinks = append(sinks, opts.Observer)
	ccfg.Observer = obs.Multi(sinks...)
	var decisions *obs.DecisionLog
	var dsinks []obs.DecisionSink
	if opts.Decisions != nil {
		decisions = obs.NewDecisionLog(opts.Decisions)
		dsinks = append(dsinks, decisions)
	}
	if col != nil {
		dsinks = append(dsinks, col)
	}
	ccfg.Decisions = obs.DecisionSinks(dsinks...)

	fleet, err := cluster.New(ccfg)
	if err != nil {
		return FleetResult{}, err
	}
	res, err := fleet.Run()
	if err != nil {
		return FleetResult{}, err
	}
	if events != nil {
		if err := events.Flush(); err != nil {
			return FleetResult{}, err
		}
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			return FleetResult{}, err
		}
	}
	if decisions != nil {
		if err := decisions.Flush(); err != nil {
			return FleetResult{}, err
		}
	}
	if col != nil {
		if err := col.WriteReport(opts.Report); err != nil {
			return FleetResult{}, err
		}
	}
	return liftFleetResult(res), nil
}

// lower converts the public FleetConfig into the internal cluster.Config.
func (fc FleetConfig) lower() (cluster.Config, error) {
	if fc.Machines <= 0 {
		return cluster.Config{}, fmt.Errorf("goodenough: fleet needs a positive machine count, got %d", fc.Machines)
	}
	if len(fc.Faults) > 0 || fc.FaultMTBFSec > 0 || fc.FaultMTTRSec > 0 {
		return cluster.Config{}, fmt.Errorf(
			"goodenough: per-core fault injection is not supported at fleet scale; use MachineFaults or MachineMTBFSec/MachineMTTRSec")
	}
	scfg, _, err := fc.Config.compile()
	if err != nil {
		return cluster.Config{}, err
	}
	spec := fc.workloadSpec()
	if err := spec.Validate(); err != nil {
		return cluster.Config{}, err
	}
	disp, err := cluster.NewDispatcher(fc.Dispatch, fc.ChoicesK, fc.Seed)
	if err != nil {
		return cluster.Config{}, fmt.Errorf("goodenough: %w", err)
	}
	var cs *faults.ClusterSchedule
	switch {
	case len(fc.MachineFaults) > 0:
		specs := make([]faults.MachineSpec, len(fc.MachineFaults))
		for i, mf := range fc.MachineFaults {
			kind, err := faults.ParseMachineKind(mf.Kind)
			if err != nil {
				return cluster.Config{}, fmt.Errorf("goodenough: machine fault %d: %w", i, err)
			}
			specs[i] = faults.MachineSpec{
				At: mf.AtSec, Kind: kind, Machine: mf.Machine,
				Duration: mf.DurationSec, Factor: mf.Factor,
			}
		}
		cs, err = faults.NewCluster(specs, fc.Machines, fc.DurationSec)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("goodenough: %w", err)
		}
	case fc.MachineMTBFSec > 0 || fc.MachineMTTRSec > 0:
		if fc.DurationSec <= 0 {
			return cluster.Config{}, fmt.Errorf("goodenough: the machine MTBF/MTTR generator needs DurationSec > 0")
		}
		cs, err = faults.GenerateCluster(fc.Seed, fc.Machines, fc.DurationSec,
			fc.MachineMTBFSec, fc.MachineMTTRSec)
		if err != nil {
			return cluster.Config{}, fmt.Errorf("goodenough: %w", err)
		}
	}
	// Each machine gets its own policy instance (policies carry state);
	// compile already validated the config, so re-instantiation cannot fail.
	mk := schedulerMakers[fc.Scheduler]
	args := makerArgs{qge: fc.QGE, bepBudget: fc.BEPBudget, besCap: fc.BESCap}
	return cluster.Config{
		Machines:        fc.Machines,
		Node:            scfg,
		NewPolicy:       func() sched.Policy { return mk(args) },
		Dispatch:        disp,
		Workload:        spec,
		Faults:          cs,
		RedispatchLimit: fc.RedispatchLimit,
		Shards:          fc.Shards,
	}, nil
}

// liftFleetResult copies the internal fleet summary into the public type.
func liftFleetResult(res cluster.Result) FleetResult {
	out := FleetResult{
		Dispatch:       res.Dispatch,
		Scheduler:      res.Scheduler,
		Machines:       res.Machines,
		Jobs:           res.Jobs,
		Completed:      res.Completed,
		Expired:        res.Expired,
		Dropped:        res.Dropped,
		LostForever:    res.LostForever,
		Quality:        res.Quality,
		Energy:         res.Energy,
		AESEnergy:      res.AESEnergy,
		BQEnergy:       res.BQEnergy,
		AESFraction:    res.AESFraction,
		MeanResponse:   res.MeanResponse,
		P95Response:    res.P95Response,
		P99Response:    res.P99Response,
		Crashes:        res.Crashes,
		Partitions:     res.Partitions,
		Degrades:       res.Degrades,
		Redispatches:   res.Redispatches,
		LostWork:       res.LostWork,
		PendingExpired: res.PendingExpired,
		Availability:   res.Availability,
		SimTime:        res.SimTime,
		Shards:         res.Shards,
		ShardEvents:    append([]int64(nil), res.ShardEvents...),
		ShardMachines:  append([]int(nil), res.ShardMachines...),
		PerMachine:     make([]FleetMachineResult, len(res.PerMachine)),
	}
	for i, m := range res.PerMachine {
		out.PerMachine[i] = FleetMachineResult{
			Energy:       m.Energy,
			Quality:      m.Quality,
			Completed:    m.Completed,
			Expired:      m.Expired,
			Crashes:      m.Crashes,
			DownTime:     m.DownTime,
			AESFraction:  m.AESFraction,
			Dispatches:   m.Dispatches,
			Redispatches: m.Redispatches,
		}
	}
	return out
}

// ValidateFleet checks every FleetConfig field without running the
// simulation, mirroring Config.Validate for fleet runs.
func (fc FleetConfig) Validate() error {
	ccfg, err := fc.lower()
	if err != nil {
		return err
	}
	return ccfg.Validate()
}

// ExportFleetEvents is a convenience wrapper: run the fleet and stream the
// structured event log as JSON Lines to w.
func ExportFleetEvents(fc FleetConfig, w io.Writer) (FleetResult, error) {
	return RunFleetWithOptions(fc, RunOptions{Events: w})
}
